//! Serving experiment: `DqServer` throughput and buffer hit-rate vs
//! shared pool size.
//!
//! The paper's setting (§2) is a server evaluating many concurrent
//! dynamic-query sessions over one index while updates stream in. This
//! bench stands that server up: N mixed PDQ/NPDQ sessions plus a live
//! writer, all over ONE tree behind a [`ShardedBufferPool`], sweeping
//! the pool's page budget. Reported per configuration: wall-clock
//! throughput (frames and delivered objects per second), true disk reads
//! behind the cache, and the pool's hit ratio — demonstrating how a
//! *shared* (not per-session, cf. `ablation_buffer`) pool amortises the
//! sessions' overlapping working sets.
//!
//! `DQ_SCALE=paper` for the full configuration, `DQ_SESSIONS` to
//! override the session count (default 8).
//!
//! Chaos mode: `DQ_FAULT_RATE=0.01` (plus optional `DQ_FAULT_SEED`)
//! reruns the same sweep with every device read subject to seeded
//! transient faults, absorbed by pool-level retry. Every reconciliation
//! identity must still hold — failed reads never reach the device
//! counters and the retry loop pairs each miss with exactly one
//! successful device read — and every session must finish `Ok`. The
//! figure is then written as `exp_service_chaos` so the fault-free
//! baseline JSON is never overwritten.
//!
//! Durable mode: `DQ_DURABLE=1` attaches a WAL-backed [`DurableLog`]
//! (group commit per frame, checkpoint every 8 commits) to each
//! single-tree run, then *recovers from the durable image* after the
//! serve and asserts the recovered tree is bit-identical to the served
//! one. Checkpoint snapshots read pages through the pool, so the strict
//! `node reads == pool accesses` identity widens to `>=` in this mode
//! (the other identities stay exact); the figure is written as
//! `exp_service_durable`.

use bench::{f2, FigureTable, Scale};
use mobiquery::{DqServer, DurableLog, PartitionedDqServer, RegionGrid, SessionKind, SessionSpec};
use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use std::sync::Arc;
use std::time::Duration;
use stkit::Interval;
use storage::{
    save_pager, ChecksumStore, FaultPlan, FaultyStore, PageStore, Pager, RetryPolicy,
    ShardedBufferPool, SnapshotSource,
};
use workload::QueryWorkload;

const FRAMES: usize = 20;
const SHARDS: usize = 4;

fn sessions(scale: Scale) -> Vec<SessionSpec<2>> {
    let count = std::env::var("DQ_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let cfg = workload::QueryWorkloadConfig {
        count,
        subsequent_frames: FRAMES,
        ..scale.query_config(0.8, 8.0)
    };
    QueryWorkload::new(cfg)
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, q)| SessionSpec {
            kind: if i % 2 == 0 {
                SessionKind::Pdq
            } else {
                SessionKind::Npdq
            },
            trajectory: q.trajectory,
            frame_times: q.frame_times,
        })
        .collect()
}

/// The sweep's shared inputs (identical for every configuration).
struct Workload<'a> {
    specs: &'a [SessionSpec<2>],
    preload: &'a [NsiSegmentRecord<2>],
    inserts: &'a [Vec<(NsiSegmentRecord<2>, f64)>],
}

/// One sweep configuration over an arbitrary page-store stack: build the
/// tree, serve, verify the reconciliation identities, and append a row.
fn run_config<S: SnapshotSource + Send + Sync>(
    table: &mut FigureTable,
    mode: &str,
    pool_pages: usize,
    pool: ShardedBufferPool<S>,
    wl: &Workload<'_>,
    fault_mode: bool,
    durable: bool,
) {
    let Workload {
        specs,
        preload,
        inserts,
    } = *wl;
    let mut tree = RTree::new(pool, RTreeConfig::default());
    for r in preload {
        tree.insert(*r, r.seg.t.lo);
    }
    tree.store().clear(); // serve from a cold cache
    let build_stats = tree.store().cache_stats();
    let io_before = tree.store().io();
    let registry = Arc::new(obs::MetricsRegistry::new());
    if fault_mode {
        tree.store().attach_fault_metrics(&registry);
    }
    let levels_before = tree.level_counters().snapshot();
    let log = durable.then(|| Arc::new(DurableLog::new(8)));
    if let Some(log) = &log {
        log.attach_metrics(&registry);
    }
    let mut server = DqServer::new(tree).with_metrics(Arc::clone(&registry));
    if let Some(log) = &log {
        server = server.with_durability(Arc::clone(log));
    }

    let t0 = std::time::Instant::now();
    let report = if mode == "serial" {
        server.serve_serial(specs, inserts)
    } else {
        server.serve(specs, inserts)
    };
    let secs = t0.elapsed().as_secs_f64();

    let (reads, cs, levels, fault_stats) = server.with_tree(|t| {
        t.store().publish_to(&registry, "pool");
        t.level_counters().snapshot().publish_to(&registry, "rtree");
        (
            (t.store().io() - io_before).reads,
            {
                let mut cs = t.store().cache_stats();
                // Counters accumulated during the tree build don't belong to
                // the serving run.
                cs.hits -= build_stats.hits;
                cs.misses -= build_stats.misses;
                cs.evictions -= build_stats.evictions;
                cs
            },
            t.level_counters().snapshot() - levels_before,
            t.store().fault_stats(),
        )
    });
    assert!(cs.hits > 0 && cs.misses > 0, "pool counters must be live");

    // Transient faults with pool retry must be invisible to serving:
    // every participant clean, no retry budget exhausted.
    assert!(
        report.writer_outcome.is_ok(),
        "writer outcome: {:?}",
        report.writer_outcome
    );
    for (i, s) in report.sessions.iter().enumerate() {
        assert!(s.outcome.is_ok(), "session {i} outcome: {:?}", s.outcome);
    }
    assert_eq!(fault_stats.exhausted, 0, "a retry budget was exhausted");
    assert_eq!(fault_stats.corrupt_pages, 0, "unexpected corruption");

    // Reconciliation: three independent observers of the serving
    // run's I/O must agree exactly — with or without fault injection
    // (failed reads never touch the device counters, and the pool's
    // retry pairs each miss with exactly one successful device read).
    //  tree level counters == engine QueryStats + writer attribution
    //  + optimistic retry traffic (node reads performed but discarded on
    //  version-validation failure; the serve publishes the delta as
    //  `tree.read_retries`). Under the frame clock's flow control a
    //  session reading frame `k` withholds the permit for batch `k + 1`,
    //  so the writer never overlaps a reading frame and the retry term
    //  must be exactly zero — a nonzero term here would mean a write
    //  section leaked into a read phase.
    let retried = registry.counter_value("tree.read_retries");
    assert_eq!(
        levels.total_reads(),
        report.total_reads() + retried,
        "tree node reads must equal session disk accesses + writer reads + retried reads"
    );
    assert_eq!(
        retried, 0,
        "the clock's flow control must keep optimistic reads conflict-free"
    );
    //  per-session mailboxes are bounded by the same flow control: the
    //  writer is never more than one frame ahead of any reader, so a
    //  mailbox can never hold more than one frame's insert batch.
    let mailbox_hwm = registry.gauge_value("service.mailbox_hwm");
    let mailbox_bound = inserts.iter().map(Vec::len).max().unwrap_or(0) as i64;
    assert!(
        mailbox_hwm <= mailbox_bound,
        "mailbox hwm {mailbox_hwm} exceeds the one-batch bound {mailbox_bound}"
    );
    if mode == "concurrent" && mailbox_bound > 0 {
        assert!(mailbox_hwm > 0, "insert broadcasts must land in mailboxes");
    }
    //  tree level counters == buffer pool hit/miss accounting. In
    //  durable mode checkpoint snapshots also read pages through the
    //  pool without ticking the level counters, so the identity widens:
    //  pool accesses == node reads + checkpoint page reads (>= 0).
    if durable {
        assert!(
            cs.hits + cs.misses >= levels.total_reads(),
            "pool accesses ({} + {}) below node reads ({})",
            cs.hits,
            cs.misses,
            levels.total_reads()
        );
    } else {
        assert_eq!(
            levels.total_reads(),
            cs.hits + cs.misses,
            "every node read is exactly one pool access"
        );
    }
    //  pool misses == true disk reads behind the cache
    assert_eq!(cs.misses, reads, "every pool miss is exactly one disk read");
    //  the per-frame timeline re-adds to the run totals
    let timeline = report.timeline();
    let tl_results: usize = timeline.iter().map(|&(_, f)| f.results).sum();
    let tl_reads: u64 = timeline.iter().map(|&(_, f)| f.stats.disk_accesses).sum();
    assert_eq!(tl_results, report.total_results(), "timeline results drift");
    assert_eq!(
        tl_reads,
        report.total_stats().disk_accesses,
        "timeline disk accesses drift"
    );

    if fault_mode {
        eprintln!(
            "# fault recovery ({mode}, {pool_pages} pages): retries={} exhausted={} corrupt={}",
            fault_stats.retries, fault_stats.exhausted, fault_stats.corrupt_pages
        );
    }

    // Durable mode: the WAL saw every frame, checkpoints fired on
    // cadence, and — the point of the whole exercise — recovering from
    // the durable image right now reproduces the served tree
    // bit-identically.
    if let Some(log) = &log {
        let stats = log.stats();
        assert_eq!(
            report.wal_appends,
            inserts.len() as u64,
            "every frame batch must be group-committed"
        );
        assert_eq!(stats.wal.appends, report.wal_appends);
        assert_eq!(registry.counter_value("wal.appends"), stats.wal.appends);
        assert!(
            report.checkpoints >= 1,
            "{} commits at every=8 must checkpoint mid-run",
            report.wal_appends
        );
        assert_eq!(stats.checkpoint_failures, 0, "a checkpoint snapshot failed");

        let (recovered, rep) = log
            .durable_image()
            .recover_tree::<2>(RTreeConfig::default())
            .expect("recovery from the post-run durable image");
        rep.publish(&registry);
        assert!(rep.tail.is_clean(), "undamaged WAL recovered {:?}", rep.tail);
        assert_eq!(
            registry.counter_value("wal.replayed_records"),
            rep.replayed_records
        );
        server.with_tree(|t| {
            assert_eq!(
                recovered.metadata(),
                t.metadata(),
                "recovered tree metadata diverged from the served tree"
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            save_pager(recovered.store(), &mut a).unwrap();
            save_pager(t.store(), &mut b).unwrap();
            assert_eq!(a, b, "recovered pager image diverged from the served tree");
        });
        eprintln!(
            "# durability ({mode}, {pool_pages} pages): appends={} group_commit_ns={} checkpoints={} replayed_frames={} replayed_records={}",
            stats.wal.appends,
            report.wal_commit_ns,
            report.checkpoints,
            rep.replayed_frames,
            rep.replayed_records
        );
    }

    let frames = (report.frames * specs.len()) as f64;
    table.row(vec![
        mode.into(),
        pool_pages.to_string(),
        f2(frames / secs),
        f2(report.total_results() as f64 / secs),
        reads.to_string(),
        cs.hits.to_string(),
        cs.misses.to_string(),
        format!("{:.1}%", cs.hit_ratio() * 100.0),
    ]);

    // Per-frame timeline (one line per global frame step) and the
    // metrics registry for the largest concurrent configuration.
    if mode == "concurrent" && pool_pages == 1024 {
        eprintln!("# timeline ({mode}, {pool_pages} pages): frame sessions results reads max_drain_us");
        for frame in 0..report.frames {
            let rows: Vec<_> = timeline.iter().filter(|&&(_, f)| f.frame == frame).collect();
            if rows.is_empty() {
                continue;
            }
            let results: usize = rows.iter().map(|&&(_, f)| f.results).sum();
            let frame_reads: u64 = rows.iter().map(|&&(_, f)| f.stats.disk_accesses).sum();
            let max_us = rows.iter().map(|&&(_, f)| f.latency_ns).max().unwrap_or(0) / 1000;
            eprintln!(
                "#   {frame:>3} {:>8} {results:>7} {frame_reads:>5} {max_us:>12}",
                rows.len()
            );
        }
        eprintln!("# metrics registry after the run:");
        for line in registry.render().lines() {
            eprintln!("#   {line}");
        }
    }
}

/// One partitioned configuration: `regions` trees behind per-region
/// sharded pools (the total page budget split across regions), every
/// per-region reconciliation identity asserted, one row appended.
fn run_partitioned(
    table: &mut FigureTable,
    regions: usize,
    total_pool_pages: usize,
    wl: &Workload<'_>,
) {
    let Workload {
        specs,
        preload,
        inserts,
    } = *wl;
    // Uniform initial cuts over the data's x-extent; live inserts land
    // inside the same extent by construction of the dataset.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for r in preload.iter().chain(inserts.iter().flatten().map(|(r, _)| r)) {
        let e = r.seg.spatial_bbox().extent(0);
        lo = lo.min(e.lo);
        hi = hi.max(e.hi);
    }
    let grid = RegionGrid::uniform(0, Interval::new(lo, hi), regions);
    let pool_pages = (total_pool_pages / regions).max(16);
    let server = PartitionedDqServer::build(grid, preload, |_| {
        RTree::new(
            ShardedBufferPool::new(Pager::new(), pool_pages, SHARDS),
            RTreeConfig::default(),
        )
    });
    let before: Vec<_> = (0..regions)
        .map(|r| {
            server.with_region_tree(r, |t| {
                t.store().clear(); // serve from a cold cache
                (t.level_counters().snapshot(), t.store().cache_stats(), t.epoch_stats())
            })
        })
        .collect();

    let t0 = std::time::Instant::now();
    let report = server.serve(specs, inserts);
    let secs = t0.elapsed().as_secs_f64();

    assert!(
        report.base.writer_outcome.is_ok(),
        "writers: {:?}",
        report.base.writer_outcome
    );
    for (i, s) in report.sessions.iter().enumerate() {
        assert!(s.outcome.is_ok(), "session {i} outcome: {:?}", s.outcome);
        // The flight recorder stays exact out of lockstep: sessions run
        // at their own pace under the per-region clocks, yet the frame
        // reports must still sum to the session totals.
        let mut frame_stats = mobiquery::QueryStats::default();
        let mut frame_results = 0;
        for f in &s.frames {
            frame_stats += f.stats;
            frame_results += f.results;
        }
        assert_eq!(frame_stats, s.stats, "session {i}: frame stats vs session stats");
        assert_eq!(frame_results, s.results.len(), "session {i}: frame results vs delivered");
    }
    // The PR 3 identities, region by region and summed: each region
    // tree's level-counter reads equal that region's attributed session
    // reads + writer reads, and each of those reads is exactly one pool
    // hit or miss.
    let mut disk_reads = 0;
    let mut summed_reads = 0;
    for (r, (levels0, cache0, epoch0)) in before.into_iter().enumerate() {
        let (levels, cache, epoch) = server.with_region_tree(r, |t| {
            (t.level_counters().snapshot(), t.store().cache_stats(), t.epoch_stats())
        });
        let reads = (levels - levels0).total_reads();
        // Optimistic retry traffic joins the identity; each region's
        // frame clock keeps its write phases disjoint from reading
        // frames, so the term must be exactly zero.
        let retried = (epoch - epoch0).read_retries;
        assert_eq!(
            reads,
            report.regions[r].session_reads + report.regions[r].writer_reads + retried,
            "region {r}: tree reads vs attributed reads"
        );
        assert_eq!(retried, 0, "region {r}: a write section leaked into a read phase");
        assert_eq!(
            (cache.hits - cache0.hits) + (cache.misses - cache0.misses),
            reads,
            "region {r}: every node read is one pool access"
        );
        disk_reads += cache.misses - cache0.misses;
        summed_reads += reads;
    }
    assert_eq!(
        summed_reads,
        report.base.total_stats().disk_accesses + report.base.writer_reads,
        "summed region reads vs aggregate report"
    );

    let loads = server.region_loads();
    let max_load = loads.iter().copied().max().unwrap_or(0);
    let mean_load = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let frames = (report.base.frames * specs.len()) as f64;
    table.row(vec![
        regions.to_string(),
        pool_pages.to_string(),
        f2(frames / secs),
        f2(report.total_results() as f64 / secs),
        report.base.inserts_applied.to_string(),
        disk_reads.to_string(),
        f2(max_load as f64 / mean_load.max(1.0)),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let specs = sessions(scale);
    let fault_rate: f64 = std::env::var("DQ_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let fault_seed: u64 = std::env::var("DQ_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let durable = std::env::var("DQ_DURABLE").is_ok_and(|v| !v.is_empty() && v != "0");

    // 80 % of the updates pre-loaded, 20 % arriving live per frame.
    let records = ds.nsi_records();
    let split = records.len() * 8 / 10;
    let (preload, live) = records.split_at(split);
    let inserts: Vec<Vec<(NsiSegmentRecord<2>, f64)>> = live
        .chunks(live.len().div_ceil(FRAMES).max(1))
        .map(|c| c.iter().map(|r| (*r, r.seg.t.lo)).collect())
        .collect();
    eprintln!(
        "# serving {} sessions ({} frames), {} preloaded + {} live records",
        specs.len(),
        FRAMES,
        preload.len(),
        live.len()
    );
    if fault_rate > 0.0 {
        eprintln!("# fault injection: transient rate {fault_rate}, seed {fault_seed}");
    }
    if durable {
        eprintln!("# durability: WAL group commit per frame, checkpoint every 8 commits");
    }

    let figure = if fault_rate > 0.0 {
        "exp_service_chaos"
    } else if durable {
        "exp_service_durable"
    } else {
        "exp_service"
    };
    let mut table = FigureTable::new(
        figure,
        "DqServer: mixed PDQ/NPDQ sessions + writer over one shared sharded pool",
        &[
            "mode",
            "pool pages",
            "frames/s",
            "results/s",
            "disk reads",
            "hits",
            "misses",
            "hit ratio",
        ],
    );

    for &(mode, pool_pages) in &[
        ("serial", 64usize),
        ("concurrent", 16),
        ("concurrent", 64),
        ("concurrent", 256),
        ("concurrent", 1024),
    ] {
        let wl = Workload {
            specs: &specs,
            preload,
            inserts: &inserts,
        };
        if fault_rate > 0.0 {
            let store = ChecksumStore::new(FaultyStore::new(
                Pager::new(),
                FaultPlan::transient(fault_seed, fault_rate),
            ));
            let pool = ShardedBufferPool::new(store, pool_pages, SHARDS).with_retry(RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_micros(1),
            });
            run_config(&mut table, mode, pool_pages, pool, &wl, true, durable);
        } else {
            let pool = ShardedBufferPool::new(Pager::new(), pool_pages, SHARDS);
            run_config(&mut table, mode, pool_pages, pool, &wl, false, durable);
        }
    }

    table.print();
    table.write_json();

    // Regions-vs-throughput sweep (fault-free runs only): the same
    // workload served by the partitioned multi-writer server, splitting
    // one total page budget across 1..=8 region pools. `DQ_REGIONS`
    // overrides the sweep (comma-separated region counts).
    if fault_rate == 0.0 {
        let counts: Vec<usize> = std::env::var("DQ_REGIONS")
            .ok()
            .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        let mut regions_table = FigureTable::new(
            "exp_service_regions",
            "PartitionedDqServer: region count vs throughput, one writer per region",
            &[
                "regions",
                "pool pages/region",
                "frames/s",
                "results/s",
                "inserts applied",
                "disk reads",
                "max/mean load",
            ],
        );
        for &regions in &counts {
            let wl = Workload {
                specs: &specs,
                preload,
                inserts: &inserts,
            };
            run_partitioned(&mut regions_table, regions, 256, &wl);
        }
        regions_table.print();
        regions_table.write_json();
    }
}
