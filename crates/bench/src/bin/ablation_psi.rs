//! Ablation: NSI vs PSI (parametric space indexing) — the §2 claim.
//!
//! "A comparative study between the two indicates that NSI outperforms
//! PSI, because of the loss of locality associated with PSI."
//!
//! Both indexes hold the identical segment set; the same snapshot queries
//! run against each (exact leaf test on, so answers are identical). PSI's
//! conservative parametric query box (window inflated by v_max ·
//! max_duration, full velocity range) reads more of the tree.

use bench::{f2, pct, FigureTable, Scale, PAPER_OVERLAPS};
use mobiquery::{psi_query, NaiveEngine, PsiBounds, PsiSegmentRecord};
use rtree::bulk::bulk_load;
use rtree::RTreeConfig;
use storage::Pager;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let nsi = ds.build_nsi_tree();
    let psi_recs: Vec<PsiSegmentRecord> = ds
        .updates()
        .iter()
        .map(|u| PsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()))
        .collect();
    // Workload stats for the parametric query mapping.
    let v_max = ds
        .updates()
        .iter()
        .flat_map(|u| u.seg.v.iter().map(|v| v.abs()))
        .fold(0.0f64, f64::max);
    let max_duration = ds
        .updates()
        .iter()
        .map(|u| u.seg.t.length())
        .fold(0.0f64, f64::max);
    let bounds = PsiBounds { v_max, max_duration };
    eprintln!("# psi bounds: v_max {v_max:.2}, max segment duration {max_duration:.2}");
    let psi = bulk_load(Pager::new(), RTreeConfig::default(), psi_recs);

    let mut table = FigureTable::new(
        "ablation_psi",
        "NSI vs PSI (identical data, identical answers)",
        &[
            "overlap",
            "NSI disk/query",
            "PSI disk/query",
            "NSI cpu/query",
            "PSI cpu/query",
            "results match",
        ],
    );
    let naive = NaiveEngine::new();
    for overlap in PAPER_OVERLAPS {
        let specs = bench::build_queries(scale, overlap, 8.0);
        let (mut nd, mut pd, mut nc, mut pc, mut frames) = (0u64, 0u64, 0u64, 0u64, 0u64);
        let mut matched = true;
        for spec in &specs {
            for q in spec.snapshots() {
                let ns = naive.query_nsi(&nsi, &q, |_| {});
                let ps = psi_query(&psi, &q, &bounds, |_| {});
                matched &= ns.results == ps.results;
                nd += ns.disk_accesses;
                pd += ps.disk_accesses;
                nc += ns.distance_computations;
                pc += ps.distance_computations;
                frames += 1;
            }
        }
        table.row(vec![
            pct(overlap),
            f2(nd as f64 / frames as f64),
            f2(pd as f64 / frames as f64),
            f2(nc as f64 / frames as f64),
            f2(pc as f64 / frames as f64),
            if matched { "yes" } else { "NO" }.into(),
        ]);
    }
    table.print();
    table.write_json();
}
