//! Ablation: Guttman linear vs quadratic split policy.
//!
//! DESIGN.md calls out the split policy as a design choice; the paper
//! uses a Guttman R-tree without naming the split. This bench builds the
//! NSI index by time-ordered insertion under both policies and compares
//! index quality (naive snapshot-query I/O) and build cost.

use bench::{f2, FigureTable, Scale};
use mobiquery::NaiveEngine;
use rtree::{NsiSegmentRecord, RTree, RTreeConfig, SplitPolicy};
use storage::{PageStore, Pager};
use workload::QueryWorkload;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);
    let specs = QueryWorkload::new(scale.query_config(0.5, 8.0)).generate();

    let mut table = FigureTable::new(
        "ablation_split",
        "Split policy: index quality and build cost",
        &[
            "policy",
            "nodes",
            "avg leaf fill",
            "build page writes",
            "naive disk/query",
            "naive cpu/query",
        ],
    );

    for (name, policy) in [
        ("linear", SplitPolicy::Linear),
        ("quadratic", SplitPolicy::Quadratic),
        ("r-star", SplitPolicy::RStar),
    ] {
        let cfg = RTreeConfig {
            split_policy: policy,
            ..RTreeConfig::default()
        };
        let store = Pager::new();
        let mut tree: RTree<NsiSegmentRecord<2>, _> = RTree::new(store, cfg);
        for r in ds.nsi_records() {
            tree.insert(r, r.seg.t.lo);
        }
        let build_io = tree.store().io();
        let inv = tree.validate().unwrap();

        let engine = NaiveEngine::new();
        let mut disk = 0u64;
        let mut cpu = 0u64;
        let mut n = 0u64;
        for spec in &specs {
            for q in spec.snapshots() {
                let s = engine.query_nsi(&tree, &q, |_| {});
                disk += s.disk_accesses;
                cpu += s.distance_computations;
                n += 1;
            }
        }
        table.row(vec![
            name.to_string(),
            inv.nodes.to_string(),
            f2(inv.avg_leaf_fill()),
            build_io.writes.to_string(),
            f2(disk as f64 / n as f64),
            f2(cpu as f64 / n as f64),
        ]);
    }
    table.print();
    table.write_json();
}
