//! Reproduces **Fig. 6** — I/O performance of PDQ: disk accesses per
//! query (leaf/total) for the first and subsequent snapshot queries,
//! naive baseline vs PDQ, across the paper's overlap levels (8×8 window).
use bench::figures::{emit, overlap_figure, Algo, Metric};

fn main() {
    emit(overlap_figure(
        "fig06",
        "I/O performance of PDQ (disk accesses/query, leaf/total)",
        Algo::Pdq,
        Metric::Io,
    ));
}
