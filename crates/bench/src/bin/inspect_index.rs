//! Verify the §5 "Data and Index Buildup" paragraph: segment count, page
//! size, fanout, fill factor and tree height of the built indexes.
//!
//! Paper: "5000 objects … 502,504 linear motion segments … Page size is
//! 4KB with a 0.5 fill factor for both internal and leaf nodes. Fanout
//! is 145 and 127 for internal- and leaf-level nodes respectively; tree
//! height is 3."

use bench::{f2, FigureTable, Scale};
use storage::PageStore;

fn main() {
    let scale = Scale::from_env();
    let ds = bench::build_dataset(scale);

    let mut table = FigureTable::new(
        "inspect_index",
        "Index buildup vs the paper's §5 parameters",
        &[
            "index",
            "records",
            "height",
            "leaf fanout",
            "internal fanout",
            "avg leaf fill",
            "fill factor",
            "pages",
        ],
    );

    let nsi = ds.build_nsi_tree();
    let inv = nsi.validate().expect("NSI tree invariants");
    table.row(vec![
        "NSI (insert, time order)".into(),
        inv.records.to_string(),
        inv.height.to_string(),
        nsi.leaf_capacity().to_string(),
        nsi.internal_capacity().to_string(),
        f2(inv.avg_leaf_fill()),
        f2(inv.avg_leaf_fill() / nsi.leaf_capacity() as f64),
        inv.nodes.to_string(),
    ]);

    let dta = ds.build_dta_tree();
    let inv = dta.validate().expect("DTA tree invariants");
    table.row(vec![
        "DTA (STR spatial, 0.5 fill)".into(),
        inv.records.to_string(),
        inv.height.to_string(),
        dta.leaf_capacity().to_string(),
        dta.internal_capacity().to_string(),
        f2(inv.avg_leaf_fill()),
        f2(inv.avg_leaf_fill() / dta.leaf_capacity() as f64),
        inv.nodes.to_string(),
    ]);

    let bulk = ds.build_nsi_tree_bulk();
    let inv = bulk.validate().expect("bulk NSI tree invariants");
    table.row(vec![
        "NSI (STR balanced, 0.5 fill)".into(),
        inv.records.to_string(),
        inv.height.to_string(),
        bulk.leaf_capacity().to_string(),
        bulk.internal_capacity().to_string(),
        f2(inv.avg_leaf_fill()),
        f2(inv.avg_leaf_fill() / bulk.leaf_capacity() as f64),
        inv.nodes.to_string(),
    ]);

    table.print();
    table.write_json();
    eprintln!(
        "# paper targets: 502504 segments, height 3, fanout 145/127, fill 0.5, page {} B",
        nsi.store().page_size()
    );
}
