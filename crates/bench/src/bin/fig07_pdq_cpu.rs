//! Reproduces **Fig. 7** — CPU performance of PDQ: distance computations
//! per query for first and subsequent snapshots, naive vs PDQ.
use bench::figures::{emit, overlap_figure, Algo, Metric};

fn main() {
    emit(overlap_figure(
        "fig07",
        "CPU performance of PDQ (distance computations/query)",
        Algo::Pdq,
        Metric::Cpu,
    ));
}
