//! Loopback integration suite for the network front door: bit-identity
//! against the serial serving oracle, typed admission rejections,
//! slow-reader / vanish / garbage containment, and the
//! graceful-shutdown drain (recovery replays zero records).

use std::sync::Arc;
use std::time::Duration;

use mobiquery::durability::DurableLog;
use mobiquery::region::RegionGrid;
use mobiquery::router::PartitionedDqServer;
use mobiquery::{NsiRecord, SessionKind, SessionPlan, SessionSpec, Trajectory};
use obs::EvictReason;
use rtree::{RTree, RTreeConfig};
use server::{
    ClientBehavior, ClientOutcome, NetClient, NetServer, RejectReason, ServerConfig,
};
use stkit::{Interval, Rect};
use storage::Pager;

type R = NsiRecord<2>;

fn line_records(n: u32) -> Vec<R> {
    (0..n)
        .map(|i| {
            let x = i as f64 + 0.5;
            R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

fn slide_plan(kind: SessionKind, frames: usize, span: f64) -> SessionPlan<2> {
    SessionPlan::new(SessionSpec {
        kind,
        trajectory: Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames)
            .map(|k| span * k as f64 / frames as f64)
            .collect(),
    })
}

fn insert_schedule(frames: usize, span: f64) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = span * k as f64 / frames as f64;
            vec![(
                R::new(
                    1000 + k as u32,
                    0,
                    Interval::new(t, 100.0),
                    [(t + 5.0) % (span - 1.0), 0.5],
                    [(t + 5.0) % (span - 1.0), 0.5],
                ),
                t,
            )]
        })
        .collect()
}

fn build_core(cuts: Vec<f64>, recs: &[R]) -> PartitionedDqServer<2, Pager> {
    PartitionedDqServer::build(RegionGrid::from_cuts(0, cuts), recs, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

fn config(min_gather: usize) -> ServerConfig {
    ServerConfig {
        min_gather,
        gather_window: Duration::from_millis(500),
        write_deadline: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

#[test]
fn loopback_stream_is_bit_identical_to_serve_serial() {
    let recs = line_records(30);
    let plans = vec![
        slide_plan(SessionKind::Pdq, 12, 30.0),
        slide_plan(SessionKind::Npdq, 12, 30.0),
        slide_plan(SessionKind::Pdq, 8, 30.0),
    ];
    let inserts = insert_schedule(12, 30.0);

    let oracle = build_core(vec![15.0], &recs).serve_serial_plans(&plans, &inserts);

    let handle = NetServer::start(
        build_core(vec![15.0], &recs),
        vec![inserts.clone()],
        "127.0.0.1:0",
        config(plans.len()),
    )
    .expect("start server");
    let addr = handle.addr();

    // Sequential admits pin registration order to plan order.
    let clients: Vec<NetClient> = plans
        .iter()
        .map(|p| {
            let mut c = NetClient::connect(addr).expect("connect");
            c.hello(p, 4).expect("hello io").expect("admitted");
            c
        })
        .collect();
    let handles: Vec<_> = clients
        .into_iter()
        .map(|c| std::thread::spawn(move || c.run(ClientBehavior::WellBehaved)))
        .collect();
    let runs: Vec<_> = handles
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    for (i, run) in runs.iter().enumerate() {
        let expect = &oracle.base.sessions[i];
        assert_eq!(
            run.results(),
            expect.results,
            "session {i}: streamed results must be bit-identical to serve_serial"
        );
        match run.outcome {
            ClientOutcome::Done {
                frames, results, ..
            } => {
                assert_eq!(frames as usize, expect.frames.len());
                assert_eq!(results as usize, expect.results.len());
                assert_eq!(run.deltas.len(), expect.frames.len(), "one delta per frame");
            }
            ref other => panic!("session {i}: expected Done, got {other:?}"),
        }
    }

    let summary = handle.shutdown();
    assert_eq!(summary.runs, 1, "one gather batch");
    assert_eq!(summary.sessions, 3);
    assert_eq!(summary.evicted, 0);
    assert!(!summary.checkpointed, "non-durable core takes no checkpoint");
}

#[test]
fn admission_rejections_are_typed() {
    let recs = line_records(10);
    // Global cap 1: the second connection is Overloaded.
    let cfg = ServerConfig {
        max_sessions: 1,
        min_gather: 2, // hold the first session pending so it stays live
        gather_window: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(build_core(vec![5.0], &recs), vec![], "127.0.0.1:0", cfg)
        .expect("start server");
    let plan = slide_plan(SessionKind::Pdq, 5, 10.0);
    let mut c1 = NetClient::connect(handle.addr()).expect("connect");
    c1.hello(&plan, 8).expect("io").expect("admitted");
    let mut c2 = NetClient::connect(handle.addr()).expect("connect");
    assert_eq!(
        c2.hello(&plan, 8).expect("io"),
        Err(RejectReason::Overloaded)
    );
    let run = c1.run(ClientBehavior::WellBehaved);
    assert!(matches!(run.outcome, ClientOutcome::Done { .. }));
    handle.shutdown();

    // Per-IP cap 1 under a roomy global cap: the second is Busy.
    let cfg = ServerConfig {
        max_sessions: 4,
        max_per_ip: 1,
        min_gather: 2,
        gather_window: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(build_core(vec![5.0], &recs), vec![], "127.0.0.1:0", cfg)
        .expect("start server");
    let mut c1 = NetClient::connect(handle.addr()).expect("connect");
    c1.hello(&plan, 8).expect("io").expect("admitted");
    let mut c2 = NetClient::connect(handle.addr()).expect("connect");
    assert_eq!(c2.hello(&plan, 8).expect("io"), Err(RejectReason::Busy));
    let run = c1.run(ClientBehavior::WellBehaved);
    assert!(matches!(run.outcome, ClientOutcome::Done { .. }));
    handle.shutdown();
}

#[test]
fn slow_reader_is_evicted_and_healthy_session_unaffected() {
    let recs = line_records(30);
    let plans = vec![
        slide_plan(SessionKind::Pdq, 12, 30.0),
        slide_plan(SessionKind::Pdq, 12, 30.0),
    ];
    let inserts = insert_schedule(12, 30.0);
    let oracle = build_core(vec![15.0], &recs).serve_serial_plans(&plans, &inserts);

    let cfg = ServerConfig {
        min_gather: 2,
        gather_window: Duration::from_secs(2),
        outbox_frames: 1,
        write_deadline: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(
        build_core(vec![15.0], &recs),
        vec![inserts],
        "127.0.0.1:0",
        cfg,
    )
    .expect("start server");

    let mut healthy = NetClient::connect(handle.addr()).expect("connect");
    healthy.hello(&plans[0], 64).expect("io").expect("admitted");
    let mut stalled = NetClient::connect(handle.addr()).expect("connect");
    // Zero credit and a stall from the first delta: the outbox fills
    // and the write deadline must evict us.
    stalled.hello(&plans[1], 0).expect("io").expect("admitted");

    let h = std::thread::spawn(move || healthy.run(ClientBehavior::WellBehaved));
    let s = std::thread::spawn(move || stalled.run(ClientBehavior::StallAfter(0)));
    let healthy_run = h.join().expect("healthy thread");
    let stalled_run = s.join().expect("stalled thread");

    assert_eq!(
        healthy_run.results(),
        oracle.base.sessions[0].results,
        "healthy session must stream the full serial results"
    );
    assert!(matches!(healthy_run.outcome, ClientOutcome::Done { .. }));
    assert_eq!(
        stalled_run.outcome,
        ClientOutcome::Evicted(EvictReason::SlowReader)
    );
    let summary = handle.shutdown();
    assert_eq!(summary.evicted, 1);
}

#[test]
fn vanished_client_is_contained() {
    let recs = line_records(30);
    let plans = vec![
        slide_plan(SessionKind::Pdq, 12, 30.0),
        slide_plan(SessionKind::Pdq, 12, 30.0),
    ];
    let inserts = insert_schedule(12, 30.0);
    let oracle = build_core(vec![15.0], &recs).serve_serial_plans(&plans, &inserts);

    let cfg = ServerConfig {
        min_gather: 2,
        gather_window: Duration::from_secs(2),
        write_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(
        build_core(vec![15.0], &recs),
        vec![inserts],
        "127.0.0.1:0",
        cfg,
    )
    .expect("start server");

    let mut healthy = NetClient::connect(handle.addr()).expect("connect");
    healthy.hello(&plans[0], 64).expect("io").expect("admitted");
    let mut vanisher = NetClient::connect(handle.addr()).expect("connect");
    vanisher.hello(&plans[1], 2).expect("io").expect("admitted");

    let h = std::thread::spawn(move || healthy.run(ClientBehavior::WellBehaved));
    let v = std::thread::spawn(move || vanisher.run(ClientBehavior::VanishAfter(1)));
    let healthy_run = h.join().expect("healthy thread");
    let vanished_run = v.join().expect("vanisher thread");

    assert_eq!(healthy_run.results(), oracle.base.sessions[0].results);
    assert!(matches!(healthy_run.outcome, ClientOutcome::Done { .. }));
    assert_eq!(vanished_run.outcome, ClientOutcome::ConnectionLost);
    let summary = handle.shutdown();
    assert_eq!(summary.evicted, 1, "the vanished session was evicted");
}

#[test]
fn garbage_streams_are_contained_to_their_session() {
    let recs = line_records(30);
    let plan = slide_plan(SessionKind::Pdq, 10, 30.0);

    let cfg = ServerConfig {
        min_gather: 2,
        gather_window: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = NetServer::start(
        build_core(vec![15.0], &recs),
        vec![],
        "127.0.0.1:0",
        cfg,
    )
    .expect("start server");

    // Garbage instead of a Hello: typed Protocol notice, no session.
    let mut pre = NetClient::connect(handle.addr()).expect("connect");
    pre.send_raw(&[5, 0, 0, 0, 0x7F, 1, 2, 3, 4]).expect("send");
    match pre.next_msg() {
        Ok(server::Msg::Evicted {
            reason: EvictReason::Protocol,
        }) => {}
        other => panic!("expected Protocol eviction notice, got {other:?}"),
    }

    // Garbage AFTER admission: that session is evicted, the healthy
    // session in the same batch still completes.
    let mut rogue = NetClient::connect(handle.addr()).expect("connect");
    rogue.hello(&plan, 8).expect("io").expect("admitted");
    rogue.send_raw(&[0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF, 0xFF, 0xFF]).expect("send");
    let mut healthy = NetClient::connect(handle.addr()).expect("connect");
    healthy.hello(&plan, 64).expect("io").expect("admitted");

    let h = std::thread::spawn(move || healthy.run(ClientBehavior::WellBehaved));
    let r = std::thread::spawn(move || rogue.run(ClientBehavior::WellBehaved));
    let healthy_run = h.join().expect("healthy thread");
    let rogue_run = r.join().expect("rogue thread");

    assert!(matches!(healthy_run.outcome, ClientOutcome::Done { .. }));
    assert!(!healthy_run.results().is_empty());
    assert_eq!(
        rogue_run.outcome,
        ClientOutcome::Evicted(EvictReason::Protocol)
    );
    let summary = handle.shutdown();
    assert!(summary.evicted >= 1);
}

#[test]
fn shutdown_drain_checkpoints_so_recovery_replays_nothing() {
    let recs = line_records(30);
    let plan = slide_plan(SessionKind::Pdq, 10, 30.0);
    let inserts = insert_schedule(10, 30.0);
    // Cadence high enough that no mid-run checkpoint fires: only the
    // drain checkpoint can bring the replay count to zero.
    let log = Arc::new(DurableLog::new(10_000));
    let core = build_core(vec![15.0], &recs).with_durability(Arc::clone(&log));

    let handle = NetServer::start(core, vec![inserts], "127.0.0.1:0", config(1))
        .expect("start server");
    let mut c = NetClient::connect(handle.addr()).expect("connect");
    c.hello(&plan, 64).expect("io").expect("admitted");
    let run = c.run(ClientBehavior::WellBehaved);
    assert!(matches!(run.outcome, ClientOutcome::Done { .. }));
    assert!(!run.results().is_empty());

    let summary = handle.shutdown();
    assert!(summary.checkpointed, "drain must take the final checkpoint");

    let (base, frames, report) = log
        .durable_image()
        .recover_records::<2>()
        .expect("recover after drain");
    assert_eq!(
        report.replayed_records, 0,
        "recovery after a graceful drain replays zero WAL records"
    );
    assert!(frames.is_empty());
    // The checkpoint holds preload + every applied insert.
    assert_eq!(base.len(), 30 + 10);
}
