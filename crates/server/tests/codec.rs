//! Wire-codec coverage: proptest round-trips plus the adversarial
//! suite — truncated, oversized-length, bit-flipped, zero-length, and
//! interleaved-garbage streams must never panic and must map to the
//! exact typed [`ProtocolError`] each class deserves.

use mobiquery::SessionKind;
use obs::EvictReason;
use proptest::prelude::*;
use server::protocol::{
    decode_payload, encode, is_delta_frame, DoneOutcome, FrameReader, HelloSpec, Msg,
    ProtocolError, RejectReason, DEFAULT_MAX_FRAME_BYTES, MAX_KEYS, PROTO_VERSION,
};

/// Round-trip one message through encode → FrameReader → compare.
fn roundtrip(msg: &Msg) -> Msg {
    let frame = encode(msg);
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME_BYTES);
    reader.extend(&frame);
    let got = reader
        .next_msg()
        .expect("decode failed")
        .expect("frame incomplete");
    assert!(!reader.has_partial(), "bytes left after one frame");
    got
}

/// A random valid `HelloSpec` from primitive draws: times are made
/// strictly increasing by accumulation, windows non-empty by
/// construction.
fn build_hello(
    kind_bit: bool,
    join_frame: u32,
    credit: u32,
    key_seeds: Vec<(f64, f64, f64, f64, f64)>,
    frame_seeds: Vec<f64>,
) -> HelloSpec {
    let mut t = -50.0;
    let keys = key_seeds
        .iter()
        .map(|&(dt, x, y, w, h)| {
            t += 0.1 + dt;
            (t, [x, y], [x + w, y + h])
        })
        .collect();
    let mut ft = 0.0;
    let frame_times = frame_seeds
        .iter()
        .map(|&dt| {
            ft += dt; // non-decreasing is enough for the wire
            ft
        })
        .collect();
    HelloSpec {
        kind: if kind_bit {
            SessionKind::Pdq
        } else {
            SessionKind::Npdq
        },
        join_frame,
        credit,
        keys,
        frame_times,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hello_roundtrips(
        kind_bit in any::<bool>(),
        join_frame in 0u32..1000,
        credit in 0u32..1_000_000,
        key_seeds in proptest::collection::vec(
            (0.0f64..10.0, -100.0f64..100.0, -100.0f64..100.0, 0.0f64..20.0, 0.0f64..20.0),
            2..12,
        ),
        frame_seeds in proptest::collection::vec(0.0f64..5.0, 1..20),
    ) {
        let hello = build_hello(kind_bit, join_frame, credit, key_seeds, frame_seeds);
        prop_assert_eq!(roundtrip(&Msg::Hello(hello.clone())), Msg::Hello(hello));
    }

    #[test]
    fn delta_roundtrips(
        frame in 0u32..100_000,
        latency_ns in any::<u64>(),
        results in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..200),
    ) {
        let msg = Msg::Delta { frame, latency_ns, results };
        let frame_bytes = encode(&msg);
        prop_assert!(is_delta_frame(&frame_bytes));
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn control_messages_roundtrip(
        n in 1u32..1_000_000,
        session in any::<u32>(),
        frames in any::<u32>(),
        results in any::<u64>(),
        pick in 0u8..8,
    ) {
        let msg = match pick {
            0 => Msg::Credit { n },
            1 => Msg::Bye,
            2 => Msg::Admitted { session },
            3 => Msg::Rejected { reason: RejectReason::Busy },
            4 => Msg::Rejected { reason: RejectReason::Overloaded },
            5 => Msg::Done { outcome: DoneOutcome::Degraded, frames, results },
            6 => Msg::Evicted { reason: EvictReason::SlowReader },
            _ => Msg::Evicted { reason: EvictReason::Protocol },
        };
        prop_assert!(!is_delta_frame(&encode(&msg)));
        prop_assert_eq!(roundtrip(&msg), msg);
    }

    /// Any byte stream fed to the reader either yields messages or a
    /// typed error — never a panic, never an unbounded allocation.
    #[test]
    fn arbitrary_streams_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut reader = FrameReader::new(1 << 16);
        let mut fed = 0;
        let mut dead = false;
        while fed < bytes.len() {
            let end = (fed + chunk).min(bytes.len());
            reader.extend(&bytes[fed..end]);
            fed = end;
            loop {
                match reader.next_msg() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => { dead = true; break; }
                }
            }
            if dead { break; }
        }
        prop_assert!(true);
    }

    /// Flipping any single bit of a valid frame still decodes to a
    /// message or a typed error — and flipping a payload bit past the
    /// prefix never breaks framing for a FOLLOWING frame... unless the
    /// error is terminal, which is the documented contract: errors
    /// poison the stream.
    #[test]
    fn bit_flips_are_contained(
        frame_idx in 0u32..50,
        bit in 0usize..2048,
        results in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..20),
    ) {
        let msg = Msg::Delta { frame: frame_idx, latency_ns: 7, results };
        let mut frame = encode(&msg);
        let nbits = frame.len() * 8;
        let bit = bit % nbits;
        frame[bit / 8] ^= 1 << (bit % 8);
        let mut reader = FrameReader::new(1 << 16);
        reader.extend(&frame);
        // Must not panic; outcome may be any typed result.
        let _ = reader.next_msg();
        prop_assert!(true);
    }
}

// ---- exact typed-error classification ------------------------------

/// Feed one complete raw frame and return the decode outcome.
fn feed(frame: &[u8], max: usize) -> Result<Option<Msg>, ProtocolError> {
    let mut reader = FrameReader::new(max);
    reader.extend(frame);
    reader.next_msg()
}

fn valid_hello() -> HelloSpec {
    HelloSpec {
        kind: SessionKind::Pdq,
        join_frame: 0,
        credit: 4,
        keys: vec![(0.0, [0.0, 0.0], [1.0, 1.0]), (10.0, [5.0, 0.0], [6.0, 1.0])],
        frame_times: vec![0.0, 5.0, 10.0],
    }
}

#[test]
fn zero_length_frame_is_empty_frame() {
    assert_eq!(
        feed(&0u32.to_le_bytes(), 1 << 16),
        Err(ProtocolError::EmptyFrame)
    );
}

#[test]
fn oversized_length_is_typed_before_any_payload_arrives() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&(1_000_000u32).to_le_bytes());
    // No payload bytes at all: the cap check happens on the prefix.
    assert_eq!(
        feed(&frame, 1 << 10),
        Err(ProtocolError::Oversized {
            len: 1_000_000,
            max: 1 << 10
        })
    );
}

#[test]
fn unknown_tag_is_classified() {
    let frame = [1u32.to_le_bytes().as_slice(), &[0x7F]].concat();
    assert_eq!(feed(&frame, 1 << 16), Err(ProtocolError::UnknownTag(0x7F)));
}

#[test]
fn bad_version_is_classified() {
    let mut frame = encode(&Msg::Hello(valid_hello()));
    // Version lives right after the prefix and tag.
    frame[5] = (PROTO_VERSION + 1) as u8;
    assert_eq!(
        feed(&frame, 1 << 20),
        Err(ProtocolError::BadVersion(PROTO_VERSION + 1))
    );
}

#[test]
fn truncated_payload_is_classified() {
    // A Credit frame whose prefix claims 5 bytes but delivers only the
    // tag: decoding the u32 runs out of payload.
    let mut frame = Vec::new();
    frame.extend_from_slice(&5u32.to_le_bytes());
    frame.push(0x02); // Credit tag, missing its 4-byte count
    frame.extend_from_slice(&[0, 0, 0, 0]); // prefix satisfied...
    frame.truncate(4 + 5);
    // ...but shrink the *claimed* length to 3 so fields outrun it.
    frame[0] = 3;
    frame.truncate(4 + 3);
    assert_eq!(feed(&frame, 1 << 16), Err(ProtocolError::Truncated));
}

#[test]
fn trailing_bytes_are_classified() {
    // Bye is 1 byte; claim 2 and append junk after the tag.
    let frame = [2u32.to_le_bytes().as_slice(), &[0x03, 0xAA]].concat();
    assert_eq!(feed(&frame, 1 << 16), Err(ProtocolError::Trailing));
}

#[test]
fn forged_count_cannot_balloon_allocation() {
    // Delta claiming u32::MAX results in a 17-byte payload: the count
    // is checked against remaining bytes before any Vec allocation.
    let mut payload = vec![0x83];
    payload.extend_from_slice(&1u32.to_le_bytes()); // frame
    payload.extend_from_slice(&2u64.to_le_bytes()); // latency
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // results count
    let frame = [(payload.len() as u32).to_le_bytes().as_slice(), &payload].concat();
    assert_eq!(feed(&frame, 1 << 20), Err(ProtocolError::Truncated));
}

#[test]
fn hello_semantic_violations_are_malformed() {
    let cases: Vec<(&str, HelloSpec)> = vec![
        ("one key", {
            let mut h = valid_hello();
            h.keys.truncate(1);
            h
        }),
        ("non-increasing times", {
            let mut h = valid_hello();
            h.keys[1].0 = h.keys[0].0;
            h
        }),
        ("nan key time", {
            let mut h = valid_hello();
            h.keys[1].0 = f64::NAN;
            h
        }),
        ("infinite corner", {
            let mut h = valid_hello();
            h.keys[0].1[0] = f64::INFINITY;
            h
        }),
        ("empty window", {
            let mut h = valid_hello();
            h.keys[0].1 = [2.0, 2.0];
            h.keys[0].2 = [1.0, 1.0];
            h
        }),
        ("empty schedule", {
            let mut h = valid_hello();
            h.frame_times.clear();
            h
        }),
        ("decreasing schedule", {
            let mut h = valid_hello();
            h.frame_times = vec![5.0, 1.0];
            h
        }),
        ("nan frame time", {
            let mut h = valid_hello();
            h.frame_times[1] = f64::NAN;
            h
        }),
    ];
    for (what, hello) in cases {
        match feed(&encode(&Msg::Hello(hello)), 1 << 20) {
            Err(ProtocolError::Malformed(_)) => {}
            other => panic!("{what}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn too_many_keys_is_malformed_not_oom() {
    let mut h = valid_hello();
    let n = MAX_KEYS + 1;
    h.keys = (0..n)
        .map(|i| (i as f64, [0.0, 0.0], [1.0, 1.0]))
        .collect();
    match feed(&encode(&Msg::Hello(h)), 1 << 22) {
        Err(ProtocolError::Malformed(m)) => assert!(m.contains("exceed"), "{m}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn interleaved_garbage_poisons_after_first_message() {
    let good = encode(&Msg::Credit { n: 3 });
    let mut stream = good.clone();
    stream.extend_from_slice(&[0u8; 4]); // zero-length frame = garbage
    stream.extend_from_slice(&good);
    let mut reader = FrameReader::new(1 << 16);
    reader.extend(&stream);
    assert_eq!(reader.next_msg(), Ok(Some(Msg::Credit { n: 3 })));
    assert_eq!(reader.next_msg(), Err(ProtocolError::EmptyFrame));
}

#[test]
fn partial_frame_at_eof_reads_as_truncated() {
    let frame = encode(&Msg::Credit { n: 9 });
    let mut reader = FrameReader::new(1 << 16);
    reader.extend(&frame[..frame.len() - 1]);
    assert_eq!(reader.next_msg(), Ok(None), "incomplete, not an error yet");
    assert!(reader.has_partial(), "EOF here classifies as Truncated");
}

#[test]
fn decode_payload_rejects_empty() {
    assert_eq!(decode_payload(&[]), Err(ProtocolError::EmptyFrame));
}

#[test]
fn hello_to_plan_is_safe_after_decode() {
    // The decode-validated spec must construct a Trajectory without
    // tripping any assert.
    let frame = encode(&Msg::Hello(valid_hello()));
    let Ok(Some(Msg::Hello(h))) = feed(&frame, 1 << 20) else {
        panic!("valid hello failed to decode");
    };
    let plan = h.to_plan();
    assert_eq!(plan.spec.frame_times.len(), 3);
    assert_eq!(plan.join_frame, 0);
}
