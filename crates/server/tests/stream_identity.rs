//! The server's core assumption, tested without sockets: a
//! multi-region `serve_plans_streamed` run hands its sinks per-frame
//! deltas that concatenate to exactly the serial reference results.

use std::sync::Mutex;
use mobiquery::region::RegionGrid;
use mobiquery::router::PartitionedDqServer;
use mobiquery::{
    FrameDelta, FrameSink, NsiRecord, SessionKind, SessionPlan, SessionSpec, SinkVerdict,
    Trajectory,
};
use rtree::{RTree, RTreeConfig};
use stkit::{Interval, Rect};
use storage::Pager;

type R = NsiRecord<2>;

fn line_records(n: u32) -> Vec<R> {
    (0..n)
        .map(|i| {
            let x = i as f64 + 0.5;
            R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

fn slide_plan(kind: SessionKind, frames: usize, span: f64) -> SessionPlan<2> {
    SessionPlan::new(SessionSpec {
        kind,
        trajectory: Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames)
            .map(|k| span * k as f64 / frames as f64)
            .collect(),
    })
}

fn insert_schedule(frames: usize, span: f64) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = span * k as f64 / frames as f64;
            vec![(
                R::new(
                    1000 + k as u32,
                    0,
                    Interval::new(t, 100.0),
                    [(t + 5.0) % (span - 1.0), 0.5],
                    [(t + 5.0) % (span - 1.0), 0.5],
                ),
                t,
            )]
        })
        .collect()
}

fn build_core(cuts: Vec<f64>, recs: &[R]) -> PartitionedDqServer<2, Pager> {
    PartitionedDqServer::build(RegionGrid::from_cuts(0, cuts), recs, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

type Recorded = (u32, Vec<(u32, u32)>);

#[derive(Default)]
struct Rec {
    frames: Mutex<Vec<Recorded>>,
}

impl FrameSink for Rec {
    fn on_frame(&self, d: &FrameDelta<'_>) -> SinkVerdict {
        self.frames
            .lock()
            .unwrap()
            .push((d.frame as u32, d.results.to_vec()));
        SinkVerdict::Continue
    }
}

#[test]
fn two_region_streamed_matches_serial() {
    let recs = line_records(30);
    let plans = vec![
        slide_plan(SessionKind::Pdq, 12, 30.0),
        slide_plan(SessionKind::Npdq, 12, 30.0),
        slide_plan(SessionKind::Pdq, 8, 30.0),
    ];
    let inserts = insert_schedule(12, 30.0);

    let oracle = build_core(vec![15.0], &recs).serve_serial_plans(&plans, &inserts);

    let sinks_owned: Vec<Rec> = plans.iter().map(|_| Rec::default()).collect();
    let sinks: Vec<Option<&dyn FrameSink>> =
        sinks_owned.iter().map(|s| Some(s as &dyn FrameSink)).collect();
    let streamed =
        build_core(vec![15.0], &recs).serve_plans_streamed(&plans, &inserts, &sinks);

    for (i, sink) in sinks_owned.iter().enumerate() {
        assert_eq!(
            streamed.base.sessions[i].results, oracle.base.sessions[i].results,
            "session {i}: concurrent vs serial report"
        );
        let got: Vec<(u32, u32)> = sink
            .frames
            .lock()
            .unwrap()
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        let frames: Vec<u32> = sink
            .frames
            .lock()
            .unwrap()
            .iter()
            .map(|(f, _)| *f)
            .collect();
        let reported: Vec<u32> = streamed.base.sessions[i]
            .frames
            .iter()
            .map(|f| f.frame as u32)
            .collect();
        assert_eq!(frames, reported, "session {i}: one sink delta per frame");
        assert_eq!(
            got, oracle.base.sessions[i].results,
            "session {i}: sink deltas vs serial results"
        );
    }
}
