//! Admission control for the network front door.
//!
//! Every connection is checked *before* any session state is built:
//! a server-wide live-session cap (reject `Overloaded`) and a per-IP
//! cap (reject `Busy`). Rejected connections get a typed wire notice
//! and are closed — they never consume a worker, an outbox, or a
//! frame-clock slot, which is what keeps an accept-flood from
//! degrading admitted sessions. Slots release on [`AdmitGuard`] drop,
//! so every exit path (clean done, eviction, handshake failure, pump
//! panic) returns capacity.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::protocol::RejectReason;

struct Counts {
    live: usize,
    per_ip: HashMap<IpAddr, usize>,
}

/// The front door's admission policy; cheap to share via `Arc`.
pub struct Admission {
    max_sessions: usize,
    max_per_ip: usize,
    counts: Mutex<Counts>,
}

impl Admission {
    /// Policy admitting at most `max_sessions` live sessions overall
    /// and `max_per_ip` per client address (both minimum 1).
    pub fn new(max_sessions: usize, max_per_ip: usize) -> Admission {
        Admission {
            max_sessions: max_sessions.max(1),
            max_per_ip: max_per_ip.max(1),
            counts: Mutex::new(Counts {
                live: 0,
                per_ip: HashMap::new(),
            }),
        }
    }

    /// Try to admit a connection from `ip`. The returned guard holds
    /// the slot until dropped.
    pub fn admit(self: &Arc<Self>, ip: IpAddr) -> Result<AdmitGuard, RejectReason> {
        let mut c = self.counts.lock();
        if c.live >= self.max_sessions {
            return Err(RejectReason::Overloaded);
        }
        let per_ip = c.per_ip.entry(ip).or_insert(0);
        if *per_ip >= self.max_per_ip {
            return Err(RejectReason::Busy);
        }
        *per_ip += 1;
        c.live += 1;
        Ok(AdmitGuard {
            admission: Arc::clone(self),
            ip,
        })
    }

    /// Live admitted sessions right now.
    pub fn live(&self) -> usize {
        self.counts.lock().live
    }

    fn release(&self, ip: IpAddr) {
        let mut c = self.counts.lock();
        c.live -= 1;
        if let Some(n) = c.per_ip.get_mut(&ip) {
            *n -= 1;
            if *n == 0 {
                c.per_ip.remove(&ip);
            }
        }
    }
}

/// RAII admission slot; dropping it frees the session's capacity.
pub struct AdmitGuard {
    admission: Arc<Admission>,
    ip: IpAddr,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.admission.release(self.ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn caps_enforced_and_slots_release() {
        let adm = Arc::new(Admission::new(3, 2));
        let a = adm.admit(ip(1)).unwrap();
        let _b = adm.admit(ip(1)).unwrap();
        // Per-IP cap for .1 is used up; another address still fits.
        assert_eq!(adm.admit(ip(1)).err(), Some(RejectReason::Busy));
        let _c = adm.admit(ip(2)).unwrap();
        // Global cap reached: even a fresh address is refused.
        assert_eq!(adm.admit(ip(3)).err(), Some(RejectReason::Overloaded));
        assert_eq!(adm.live(), 3);
        // Dropping a slot frees both caps.
        drop(a);
        assert_eq!(adm.live(), 2);
        let _d = adm.admit(ip(1)).unwrap();
    }
}
