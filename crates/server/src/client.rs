//! Blocking reference client for the wire protocol.
//!
//! Used by the integration tests, the `exp_service_net` benchmark, and
//! the `examples/net_client` quickstart. Besides the well-behaved
//! [`run`](NetClient::run) path it exposes
//! the misbehaviors the chaos suite needs: stop granting credit
//! mid-run ([`ClientBehavior::StallAfter`]), vanish without a goodbye
//! ([`ClientBehavior::VanishAfter`]), or send raw garbage
//! ([`NetClient::send_raw`]).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use mobiquery::SessionPlan;
use obs::EvictReason;

use crate::protocol::{
    encode, FrameReader, HelloSpec, Msg, RejectReason, DEFAULT_MAX_FRAME_BYTES,
};

/// How a client-side session ended.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientOutcome {
    /// The server finished the session and said so.
    Done {
        /// Wire outcome code.
        outcome: crate::protocol::DoneOutcome,
        /// Frames the server reported for this session.
        frames: u32,
        /// Total results the server counted.
        results: u64,
    },
    /// The server evicted this session.
    Evicted(EvictReason),
    /// The socket died before a terminal message arrived.
    ConnectionLost,
}

/// One received frame delta: `(frame, latency_ns, results)`.
pub type ClientDelta = (u32, u64, Vec<(u32, u32)>);

/// Everything a completed (or aborted) client run collected.
#[derive(Clone, Debug)]
pub struct ClientRun {
    /// Per-frame deltas in arrival order.
    pub deltas: Vec<ClientDelta>,
    /// Terminal state.
    pub outcome: ClientOutcome,
}

impl ClientRun {
    /// All delivered `(oid, seq)` pairs in arrival order — directly
    /// comparable to a [`SessionOutput`](mobiquery::SessionOutput)'s
    /// `results`.
    pub fn results(&self) -> Vec<(u32, u32)> {
        self.deltas
            .iter()
            .flat_map(|(_, _, r)| r.iter().copied())
            .collect()
    }
}

/// Misbehavior knobs for the chaos suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientBehavior {
    /// Read and credit every frame until done.
    WellBehaved,
    /// Stop granting credit (and keep the socket open) after this many
    /// deltas: the slow-reader case.
    StallAfter(usize),
    /// Drop the socket without warning after this many deltas: the
    /// vanished-client case.
    VanishAfter(usize),
}

/// A blocking protocol client over one TCP connection.
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    session: Option<u32>,
}

impl NetClient {
    /// Connect to the front door.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(NetClient {
            stream,
            reader: FrameReader::new(DEFAULT_MAX_FRAME_BYTES),
            session: None,
        })
    }

    /// Send `Hello` for `plan` with `credit` initial delta credits and
    /// wait for the verdict. `Ok(Ok(session))` once admitted.
    pub fn hello(
        &mut self,
        plan: &SessionPlan<2>,
        credit: u32,
    ) -> std::io::Result<Result<u32, RejectReason>> {
        let hello = HelloSpec::from_plan(plan, credit);
        self.stream.write_all(&encode(&Msg::Hello(hello)))?;
        match self.next_msg()? {
            Msg::Admitted { session } => {
                self.session = Some(session);
                Ok(Ok(session))
            }
            Msg::Rejected { reason } => Ok(Err(reason)),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Admitted/Rejected, got {other:?}"),
            )),
        }
    }

    /// The session id, once admitted.
    pub fn session(&self) -> Option<u32> {
        self.session
    }

    /// Write raw bytes to the socket (chaos: garbage mid-stream).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Grant `n` more delta credits.
    pub fn grant(&mut self, n: u32) -> std::io::Result<()> {
        self.stream.write_all(&encode(&Msg::Credit { n }))
    }

    /// Blocking read of the next complete message.
    pub fn next_msg(&mut self) -> std::io::Result<Msg> {
        let mut buf = [0u8; 4096];
        loop {
            match self.reader.next_msg() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        e.to_string(),
                    ))
                }
            }
            match self.stream.read(&mut buf)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                n => self.reader.extend(&buf[..n]),
            }
        }
    }

    /// Drive an admitted session to its end with the given behavior,
    /// granting one credit back per received delta (well-behaved) so
    /// the server's outbox never waits on us.
    pub fn run(mut self, behavior: ClientBehavior) -> ClientRun {
        let mut deltas = Vec::new();
        loop {
            match behavior {
                ClientBehavior::StallAfter(n) if deltas.len() >= n => {
                    // Stop reading and crediting but keep the socket
                    // open: the server must evict us on its own.
                    return self.await_eviction(deltas);
                }
                ClientBehavior::VanishAfter(n) if deltas.len() >= n => {
                    let _ = self.stream.shutdown(Shutdown::Both);
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::ConnectionLost,
                    };
                }
                _ => {}
            }
            match self.next_msg() {
                Ok(Msg::Delta {
                    frame,
                    latency_ns,
                    results,
                }) => {
                    deltas.push((frame, latency_ns, results));
                    // A failed grant just means the server has stopped
                    // reading (it half-closes after the terminal frame);
                    // keep reading — Done/Evicted is already en route.
                    let _ = self.grant(1);
                }
                Ok(Msg::Done {
                    outcome,
                    frames,
                    results,
                }) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::Done {
                            outcome,
                            frames,
                            results,
                        },
                    }
                }
                Ok(Msg::Evicted { reason }) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::Evicted(reason),
                    }
                }
                Ok(_) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::ConnectionLost,
                    }
                }
                Err(_) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::ConnectionLost,
                    }
                }
            }
        }
    }

    /// Stalled client's tail: wait (without crediting) until the
    /// server notifies eviction or drops us.
    fn await_eviction(mut self, deltas: Vec<ClientDelta>) -> ClientRun {
        loop {
            match self.next_msg() {
                Ok(Msg::Evicted { reason }) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::Evicted(reason),
                    }
                }
                // A delta raced the stall decision; swallow without
                // crediting — the server's deadline does the rest.
                Ok(Msg::Delta { .. }) => {}
                Ok(Msg::Done {
                    outcome,
                    frames,
                    results,
                }) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::Done {
                            outcome,
                            frames,
                            results,
                        },
                    }
                }
                Ok(_) | Err(_) => {
                    return ClientRun {
                        deltas,
                        outcome: ClientOutcome::ConnectionLost,
                    }
                }
            }
        }
    }
}
