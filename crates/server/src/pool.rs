//! Fixed worker thread pool for session pumps.
//!
//! One admitted session occupies one worker for its whole lifetime
//! (handshake → pump → close), so the pool size is the real ceiling on
//! concurrent sessions — the admission cap is clamped to it at server
//! start. A panicking job is contained: the worker catches it and
//! moves to the next job, so one broken session never shrinks the
//! pool.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool; see the module docs.
pub struct WorkerPool {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (minimum 1) named `name-<i>`.
    pub fn new(workers: usize, name: &str) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the recv: jobs run
                        // outside it so workers drain in parallel.
                        let job = match rx.lock().recv() {
                            Ok(job) => job,
                            Err(_) => return,
                        };
                        let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Enqueue a job; `false` once the pool is shutting down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// A detached dispatcher for threads that outlive this reference
    /// (the listener). Workers only exit once every such sender is
    /// dropped *and* the pool's own half is closed by `join`.
    pub fn job_sender(&self) -> mpsc::Sender<Job> {
        self.tx.as_ref().expect("pool already joined").clone()
    }

    /// Stop accepting jobs, run out the queue, and join every worker.
    pub fn join(mut self) {
        self.tx = None; // close the channel: workers exit when drained
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_panics_are_contained() {
        let pool = WorkerPool::new(3, "test");
        let done = Arc::new(AtomicUsize::new(0));
        pool.execute(|| panic!("contained"));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }
}
