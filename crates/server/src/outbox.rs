//! Bounded per-session outbox between the serving core and a socket.
//!
//! The coordinator's [`FrameSink`](mobiquery::FrameSink) pushes each
//! frame's encoded delta here; the session's pump thread pops frames
//! and writes them to the socket. The queue is **bounded**: when the
//! client stops draining it (no credit, stalled socket), `push` blocks
//! up to the write deadline and then fails — that failure *is* the
//! slow-reader signal, turned into an eviction by the sink. The
//! serving core therefore never waits on a socket longer than the
//! deadline, and a dead session back-pressures nothing.
//!
//! Delta frames carry a credit bit so the pump can hold them while the
//! client's credit is exhausted; terminal notices (`Done`, `Evicted`)
//! bypass both the bound and the credit gate — they must always reach
//! the wire if the socket still works.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use obs::EvictReason;
use parking_lot::{Condvar, Mutex};

/// Why a [`Outbox::push`] failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue stayed full past the deadline: the reader is slow.
    Timeout,
    /// The outbox was already finished or evicted.
    Closed,
}

/// What [`Outbox::pop`] produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop {
    /// One wire frame to write to the socket.
    Frame(Vec<u8>),
    /// Nothing available within the timeout (or deltas held for
    /// credit); poll the socket and come back.
    Idle,
    /// The queue is drained and no more frames will ever arrive.
    Exhausted,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Open,
    Finished,
    Evicted(EvictReason),
}

struct QueuedFrame {
    bytes: Vec<u8>,
    /// True for `Delta` frames, which only leave while credit remains.
    needs_credit: bool,
}

struct Inner {
    queue: VecDeque<QueuedFrame>,
    hwm: usize,
    state: State,
}

/// Bounded handoff queue; see the module docs.
pub struct Outbox {
    inner: Mutex<Inner>,
    /// Signaled when a frame is queued or the state leaves `Open`.
    added: Condvar,
    /// Signaled when a frame is popped (space freed).
    removed: Condvar,
    cap: usize,
}

impl Outbox {
    /// An open outbox holding at most `cap` queued frames (minimum 1).
    pub fn new(cap: usize) -> Outbox {
        Outbox {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                hwm: 0,
                state: State::Open,
            }),
            added: Condvar::new(),
            removed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Queue one delta frame, blocking while the queue is full, up to
    /// `deadline`. Called by the serving core's sink.
    pub fn push(&self, bytes: Vec<u8>, deadline: Duration) -> Result<(), PushError> {
        let start = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if g.state != State::Open {
                return Err(PushError::Closed);
            }
            if g.queue.len() < self.cap {
                g.queue.push_back(QueuedFrame {
                    bytes,
                    needs_credit: true,
                });
                g.hwm = g.hwm.max(g.queue.len());
                self.added.notify_all();
                return Ok(());
            }
            let remaining = deadline.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Err(PushError::Timeout);
            }
            self.removed.wait_for(&mut g, remaining);
        }
    }

    /// Pop the next frame the pump may write. `credit` gates delta
    /// frames: when false, a queued delta is held and `Idle` is
    /// returned instead (terminal notices always pass). Blocks up to
    /// `timeout` waiting for something to arrive.
    pub fn pop(&self, credit: bool, timeout: Duration) -> Pop {
        let start = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if let Some(head) = g.queue.front() {
                if head.needs_credit && !credit {
                    return Pop::Idle;
                }
                let f = g.queue.pop_front().expect("head just observed");
                self.removed.notify_all();
                return Pop::Frame(f.bytes);
            }
            if g.state != State::Open {
                return Pop::Exhausted;
            }
            let remaining = timeout.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                return Pop::Idle;
            }
            self.added.wait_for(&mut g, remaining);
        }
    }

    /// Close the outbox normally: queue the terminal `done` notice
    /// (bypasses the bound) and refuse further pushes. No-op if the
    /// outbox is already closed.
    pub fn finish(&self, done: Vec<u8>) {
        let mut g = self.inner.lock();
        if g.state != State::Open {
            return;
        }
        g.queue.push_back(QueuedFrame {
            bytes: done,
            needs_credit: false,
        });
        g.state = State::Finished;
        self.added.notify_all();
        self.removed.notify_all();
    }

    /// Evict the session: drop everything still queued (the reader is
    /// not consuming it), queue the `notice`, and refuse further
    /// pushes. First eviction wins; later calls are no-ops. Returns
    /// true iff this call performed the transition.
    pub fn evict(&self, reason: EvictReason, notice: Vec<u8>) -> bool {
        let mut g = self.inner.lock();
        if g.state != State::Open {
            return false;
        }
        g.queue.clear();
        g.queue.push_back(QueuedFrame {
            bytes: notice,
            needs_credit: false,
        });
        g.state = State::Evicted(reason);
        self.added.notify_all();
        self.removed.notify_all();
        true
    }

    /// The deepest the queue has ever been.
    pub fn hwm(&self) -> usize {
        self.inner.lock().hwm
    }

    /// The eviction reason, if this outbox was evicted.
    pub fn evict_reason(&self) -> Option<EvictReason> {
        match self.inner.lock().state {
            State::Evicted(r) => Some(r),
            _ => None,
        }
    }

    /// True once `finish` or `evict` has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().state != State::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn push_pop_roundtrip_and_hwm() {
        let ob = Outbox::new(2);
        ob.push(vec![1], MS).unwrap();
        ob.push(vec![2], MS).unwrap();
        assert_eq!(ob.hwm(), 2);
        assert_eq!(ob.pop(true, MS), Pop::Frame(vec![1]));
        assert_eq!(ob.pop(true, MS), Pop::Frame(vec![2]));
        assert_eq!(ob.pop(true, MS), Pop::Idle);
    }

    #[test]
    fn full_queue_times_out_as_slow_reader() {
        let ob = Outbox::new(1);
        ob.push(vec![1], MS).unwrap();
        let start = Instant::now();
        assert_eq!(ob.push(vec![2], Duration::from_millis(20)), Err(PushError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn credit_gates_deltas_but_not_terminals() {
        let ob = Outbox::new(4);
        ob.push(vec![1], MS).unwrap();
        assert_eq!(ob.pop(false, MS), Pop::Idle, "delta held without credit");
        ob.finish(vec![9]);
        // The delta is still first in line, still credit-gated...
        assert_eq!(ob.pop(false, MS), Pop::Idle);
        // ...until credit arrives, then the terminal drains after it.
        assert_eq!(ob.pop(true, MS), Pop::Frame(vec![1]));
        assert_eq!(ob.pop(false, MS), Pop::Frame(vec![9]));
        assert_eq!(ob.pop(false, MS), Pop::Exhausted);
    }

    #[test]
    fn evict_drops_queue_and_closes() {
        let ob = Outbox::new(4);
        ob.push(vec![1], MS).unwrap();
        ob.push(vec![2], MS).unwrap();
        ob.evict(EvictReason::SlowReader, vec![0xEE]);
        assert_eq!(ob.push(vec![3], MS), Err(PushError::Closed));
        assert_eq!(ob.evict_reason(), Some(EvictReason::SlowReader));
        // Only the notice survives, credit-exempt.
        assert_eq!(ob.pop(false, MS), Pop::Frame(vec![0xEE]));
        assert_eq!(ob.pop(false, MS), Pop::Exhausted);
        // Second eviction is a no-op.
        ob.evict(EvictReason::Protocol, vec![0xFF]);
        assert_eq!(ob.evict_reason(), Some(EvictReason::SlowReader));
    }

    #[test]
    fn blocked_push_wakes_when_pump_drains() {
        let ob = Arc::new(Outbox::new(1));
        ob.push(vec![1], MS).unwrap();
        let ob2 = Arc::clone(&ob);
        let t = std::thread::spawn(move || ob2.push(vec![2], Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ob.pop(true, MS), Pop::Frame(vec![1]));
        t.join().unwrap().unwrap();
        assert_eq!(ob.pop(true, MS), Pop::Frame(vec![2]));
    }
}
