//! Length-prefixed binary wire protocol for the network front door.
//!
//! Every wire frame is a `u32` little-endian payload length followed by
//! the payload: one tag byte and a fixed, versioned field layout. The
//! codec is hand-rolled (the build has no registry access) and hardened
//! against adversarial bytes: **no input byte stream may panic the
//! decoder** — every malformation maps to a typed [`ProtocolError`],
//! and count fields are checked against the bytes actually present
//! before any allocation, so a forged `n = u32::MAX` cannot balloon
//! memory.
//!
//! The geometry side matters too: `Trajectory::new` *asserts* on
//! non-finite times, non-increasing keys, and empty windows, so
//! [`HelloSpec`] validation happens here, at decode time, and a decoded
//! `Hello` is safe to hand to the serving core as-is.
//!
//! Flow control is application-level **credit**: the server only sends
//! `Delta` frames while the client has granted credit (`Hello.credit`
//! plus later `Credit` messages), one unit per delta. This keeps the
//! slow-reader policy deterministic — a stalled client is one that
//! stops granting credit, regardless of how much the kernel's socket
//! buffers happen to absorb.

use mobiquery::{SessionKind, SessionPlan, SessionSpec, Trajectory};
use mobiquery::trajectory::KeySnapshot;
use obs::EvictReason;
use stkit::Rect;

/// Protocol version carried by every `Hello`.
pub const PROTO_VERSION: u16 = 1;

/// Default cap on one wire frame's payload length.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Most trajectory key snapshots one `Hello` may carry.
pub const MAX_KEYS: usize = 4096;

/// Most frame times one `Hello` may carry.
pub const MAX_FRAME_TIMES: usize = 65_536;

// Message tags. Client→server tags have the high bit clear,
// server→client tags have it set.
const TAG_HELLO: u8 = 0x01;
const TAG_CREDIT: u8 = 0x02;
const TAG_BYE: u8 = 0x03;
const TAG_ADMITTED: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;
const TAG_DELTA: u8 = 0x83;
const TAG_DONE: u8 = 0x84;
const TAG_EVICTED: u8 = 0x85;

/// Why the admission controller refused a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The caller's per-IP session cap is already used up.
    Busy,
    /// The server-wide live-session cap is reached.
    Overloaded,
}

/// How a served session ended, as reported in `Done`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoneOutcome {
    /// Every frame completed cleanly.
    Ok,
    /// Storage errors surfaced but the session kept serving.
    Degraded,
    /// The session died mid-run (contained panic or detach).
    Failed,
}

/// A validated `Hello`: everything the serving core needs to build a
/// [`SessionPlan`]. Decoding guarantees the geometry is safe for
/// `Trajectory::new` (≥ 2 keys, strictly increasing finite times,
/// non-empty finite windows, finite non-decreasing frame times).
#[derive(Clone, Debug, PartialEq)]
pub struct HelloSpec {
    /// PDQ or NPDQ.
    pub kind: SessionKind,
    /// Global frame this session joins at.
    pub join_frame: u32,
    /// Initial delta credit granted by the client.
    pub credit: u32,
    /// Trajectory key snapshots: `(t, lo, hi)` per key.
    pub keys: Vec<(f64, [f64; 2], [f64; 2])>,
    /// Monotone frame schedule.
    pub frame_times: Vec<f64>,
}

impl HelloSpec {
    /// Build the serving-core plan. Infallible: decode already
    /// validated every invariant `Trajectory::new` asserts.
    pub fn to_plan(&self) -> SessionPlan<2> {
        let keys = self
            .keys
            .iter()
            .map(|&(t, lo, hi)| KeySnapshot {
                t,
                window: Rect::from_corners(lo, hi),
            })
            .collect();
        let spec = SessionSpec {
            kind: self.kind,
            trajectory: Trajectory::new(keys),
            frame_times: self.frame_times.clone(),
        };
        SessionPlan::new(spec).join_at(self.join_frame as usize)
    }

    /// The wire form of an in-process plan (what a client sends).
    pub fn from_plan(plan: &SessionPlan<2>, credit: u32) -> HelloSpec {
        let keys = plan
            .spec
            .trajectory
            .keys()
            .iter()
            .map(|k| {
                (
                    k.t,
                    [k.window.dims[0].lo, k.window.dims[1].lo],
                    [k.window.dims[0].hi, k.window.dims[1].hi],
                )
            })
            .collect();
        HelloSpec {
            kind: plan.spec.kind,
            join_frame: plan.join_frame as u32,
            credit,
            keys,
            frame_times: plan.spec.frame_times.clone(),
        }
    }
}

/// One protocol message, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Client→server: open a session.
    Hello(HelloSpec),
    /// Client→server: grant `n` more delta credits.
    Credit {
        /// Credits granted.
        n: u32,
    },
    /// Client→server: no further messages follow (half-close).
    Bye,
    /// Server→client: the session was admitted.
    Admitted {
        /// Server-assigned session id.
        session: u32,
    },
    /// Server→client: admission refused; the socket closes next.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Server→client: one frame's new results for this session.
    Delta {
        /// Global frame number.
        frame: u32,
        /// Server-side frame processing latency.
        latency_ns: u64,
        /// `(oid, seq)` pairs delivered this frame.
        results: Vec<(u32, u32)>,
    },
    /// Server→client: the session finished; the socket closes next.
    Done {
        /// How the session ended.
        outcome: DoneOutcome,
        /// Frames the session reported.
        frames: u32,
        /// Total results delivered.
        results: u64,
    },
    /// Server→client: the session was evicted; the socket closes next.
    Evicted {
        /// Why.
        reason: EvictReason,
    },
}

/// Typed decode failure. Every adversarial byte stream maps to exactly
/// one of these; none of them panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before its fields did (or the stream ended
    /// inside a frame).
    Truncated,
    /// The length prefix exceeds the frame cap.
    Oversized {
        /// Claimed payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A zero-length payload (no room for even a tag).
    EmptyFrame,
    /// The tag byte names no known message.
    UnknownTag(u8),
    /// `Hello` carried an unsupported protocol version.
    BadVersion(u16),
    /// Fields decoded but violate a semantic invariant.
    Malformed(String),
    /// Bytes remained after a complete message was decoded.
    Trailing,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            ProtocolError::EmptyFrame => write!(f, "zero-length frame"),
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
            ProtocolError::Trailing => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Encode `msg` as a complete wire frame (length prefix + payload).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut p: Vec<u8> = Vec::with_capacity(16);
    match msg {
        Msg::Hello(h) => {
            p.push(TAG_HELLO);
            p.extend_from_slice(&PROTO_VERSION.to_le_bytes());
            p.push(match h.kind {
                SessionKind::Pdq => 0,
                SessionKind::Npdq => 1,
            });
            p.extend_from_slice(&h.join_frame.to_le_bytes());
            p.extend_from_slice(&h.credit.to_le_bytes());
            p.extend_from_slice(&(h.keys.len() as u32).to_le_bytes());
            for &(t, lo, hi) in &h.keys {
                p.extend_from_slice(&t.to_le_bytes());
                for v in lo.iter().chain(hi.iter()) {
                    p.extend_from_slice(&v.to_le_bytes());
                }
            }
            p.extend_from_slice(&(h.frame_times.len() as u32).to_le_bytes());
            for t in &h.frame_times {
                p.extend_from_slice(&t.to_le_bytes());
            }
        }
        Msg::Credit { n } => {
            p.push(TAG_CREDIT);
            p.extend_from_slice(&n.to_le_bytes());
        }
        Msg::Bye => p.push(TAG_BYE),
        Msg::Admitted { session } => {
            p.push(TAG_ADMITTED);
            p.extend_from_slice(&session.to_le_bytes());
        }
        Msg::Rejected { reason } => {
            p.push(TAG_REJECTED);
            p.push(match reason {
                RejectReason::Busy => 0,
                RejectReason::Overloaded => 1,
            });
        }
        Msg::Delta {
            frame,
            latency_ns,
            results,
        } => {
            p.push(TAG_DELTA);
            p.extend_from_slice(&frame.to_le_bytes());
            p.extend_from_slice(&latency_ns.to_le_bytes());
            p.extend_from_slice(&(results.len() as u32).to_le_bytes());
            for &(oid, seq) in results {
                p.extend_from_slice(&oid.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
            }
        }
        Msg::Done {
            outcome,
            frames,
            results,
        } => {
            p.push(TAG_DONE);
            p.push(match outcome {
                DoneOutcome::Ok => 0,
                DoneOutcome::Degraded => 1,
                DoneOutcome::Failed => 2,
            });
            p.extend_from_slice(&frames.to_le_bytes());
            p.extend_from_slice(&results.to_le_bytes());
        }
        Msg::Evicted { reason } => {
            p.push(TAG_EVICTED);
            p.push(match reason {
                EvictReason::SlowReader => 0,
                EvictReason::Disconnected => 1,
                EvictReason::Protocol => 2,
            });
        }
    }
    let mut frame = Vec::with_capacity(4 + p.len());
    frame.extend_from_slice(&(p.len() as u32).to_le_bytes());
    frame.extend_from_slice(&p);
    frame
}

/// Bounds-checked little-endian reader over one payload.
struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Cursor<'a> {
        Cursor { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        if end > self.b.len() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count field, checked against the bytes actually remaining
    /// (`elem_bytes` each) *before* any allocation.
    fn count(&self, n: u32, elem_bytes: usize) -> Result<usize, ProtocolError> {
        let n = n as usize;
        let need = n.checked_mul(elem_bytes).ok_or(ProtocolError::Truncated)?;
        if need > self.b.len() - self.pos {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(ProtocolError::Trailing)
        }
    }
}

fn malformed(m: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(m.into())
}

fn decode_hello(c: &mut Cursor<'_>) -> Result<HelloSpec, ProtocolError> {
    let proto = c.u16()?;
    if proto != PROTO_VERSION {
        return Err(ProtocolError::BadVersion(proto));
    }
    let kind = match c.u8()? {
        0 => SessionKind::Pdq,
        1 => SessionKind::Npdq,
        k => return Err(malformed(format!("unknown session kind {k}"))),
    };
    let join_frame = c.u32()?;
    let credit = c.u32()?;

    let nkeys_raw = c.u32()?;
    let nkeys = c.count(nkeys_raw, 40)?;
    if nkeys < 2 {
        return Err(malformed(format!("trajectory needs ≥ 2 keys, got {nkeys}")));
    }
    if nkeys > MAX_KEYS {
        return Err(malformed(format!("{nkeys} keys exceed cap {MAX_KEYS}")));
    }
    let mut keys = Vec::with_capacity(nkeys);
    let mut prev_t = f64::NEG_INFINITY;
    for _ in 0..nkeys {
        let t = c.f64()?;
        let lo = [c.f64()?, c.f64()?];
        let hi = [c.f64()?, c.f64()?];
        if !t.is_finite()
            || lo.iter().any(|v| !v.is_finite())
            || hi.iter().any(|v| !v.is_finite())
        {
            return Err(malformed("non-finite value in key snapshot"));
        }
        if t <= prev_t {
            return Err(malformed("key times must strictly increase"));
        }
        prev_t = t;
        if lo[0] > hi[0] || lo[1] > hi[1] {
            return Err(malformed("empty key window"));
        }
        keys.push((t, lo, hi));
    }

    let nframes_raw = c.u32()?;
    let nframes = c.count(nframes_raw, 8)?;
    if nframes == 0 {
        return Err(malformed("frame schedule is empty"));
    }
    if nframes > MAX_FRAME_TIMES {
        return Err(malformed(format!(
            "{nframes} frame times exceed cap {MAX_FRAME_TIMES}"
        )));
    }
    let mut frame_times = Vec::with_capacity(nframes);
    let mut prev = f64::NEG_INFINITY;
    for _ in 0..nframes {
        let t = c.f64()?;
        if !t.is_finite() {
            return Err(malformed("non-finite frame time"));
        }
        if t < prev {
            return Err(malformed("frame times must be non-decreasing"));
        }
        prev = t;
        frame_times.push(t);
    }

    Ok(HelloSpec {
        kind,
        join_frame,
        credit,
        keys,
        frame_times,
    })
}

/// Whether an encoded wire frame carries a `Delta` (the only message
/// kind gated by client credit). Looks at the tag byte right after the
/// length prefix, so the pump never re-decodes what it is sending.
pub fn is_delta_frame(frame: &[u8]) -> bool {
    frame.get(4) == Some(&TAG_DELTA)
}

/// Decode one payload (the bytes after the length prefix).
pub fn decode_payload(payload: &[u8]) -> Result<Msg, ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::EmptyFrame);
    }
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let msg = match tag {
        TAG_HELLO => Msg::Hello(decode_hello(&mut c)?),
        TAG_CREDIT => {
            let n = c.u32()?;
            if n == 0 {
                return Err(malformed("zero-credit grant"));
            }
            Msg::Credit { n }
        }
        TAG_BYE => Msg::Bye,
        TAG_ADMITTED => Msg::Admitted { session: c.u32()? },
        TAG_REJECTED => Msg::Rejected {
            reason: match c.u8()? {
                0 => RejectReason::Busy,
                1 => RejectReason::Overloaded,
                r => return Err(malformed(format!("unknown reject reason {r}"))),
            },
        },
        TAG_DELTA => {
            let frame = c.u32()?;
            let latency_ns = c.u64()?;
            let n_raw = c.u32()?;
            let n = c.count(n_raw, 8)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                results.push((c.u32()?, c.u32()?));
            }
            Msg::Delta {
                frame,
                latency_ns,
                results,
            }
        }
        TAG_DONE => Msg::Done {
            outcome: match c.u8()? {
                0 => DoneOutcome::Ok,
                1 => DoneOutcome::Degraded,
                2 => DoneOutcome::Failed,
                o => return Err(malformed(format!("unknown done outcome {o}"))),
            },
            frames: c.u32()?,
            results: c.u64()?,
        },
        TAG_EVICTED => Msg::Evicted {
            reason: match c.u8()? {
                0 => EvictReason::SlowReader,
                1 => EvictReason::Disconnected,
                2 => EvictReason::Protocol,
                r => return Err(malformed(format!("unknown evict reason {r}"))),
            },
        },
        t => return Err(ProtocolError::UnknownTag(t)),
    };
    c.finish()?;
    Ok(msg)
}

/// Incremental frame assembler over an arbitrary byte stream.
///
/// Feed raw socket bytes with [`extend`](FrameReader::extend), then
/// drain complete messages with [`next_msg`](FrameReader::next_msg).
/// An incomplete frame returns `Ok(None)` — call again after more
/// bytes arrive; the holder maps a non-empty buffer at stream EOF to
/// [`ProtocolError::Truncated`] via [`has_partial`](FrameReader::has_partial).
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// Assembler rejecting payloads longer than `max_frame`.
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Append raw bytes from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True iff an incomplete frame is buffered (truncation at EOF).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Decode the next complete message, if a full frame is buffered.
    /// Errors are terminal for the stream: the buffer contents are
    /// unspecified afterwards and the connection should be dropped.
    pub fn next_msg(&mut self) -> Result<Option<Msg>, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len == 0 {
            return Err(ProtocolError::EmptyFrame);
        }
        if len as usize > self.max_frame {
            return Err(ProtocolError::Oversized {
                len,
                max: self.max_frame as u32,
            });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = decode_payload(&self.buf[4..total])?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}
