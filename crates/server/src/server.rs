//! The network front door: TCP listener, session pumps, and the
//! serving coordinator.
//!
//! Three kinds of thread cooperate:
//!
//! * **Listener** — accepts connections, runs admission inline
//!   (rejects get a typed `Rejected` frame and close immediately), and
//!   hands admitted sockets to the worker pool.
//! * **Session pumps** (pool workers) — one per admitted session for
//!   its lifetime: decode the `Hello`, register the session with the
//!   coordinator, then shuttle bytes — outbox frames out, `Credit` /
//!   `Bye` in. Every socket failure mode (EOF, reset, garbage bytes,
//!   half-open peer) is contained here: the pump evicts its own
//!   outbox, which the coordinator's sink observes as `Detach`.
//! * **Coordinator** — owns the [`PartitionedDqServer`], gathers
//!   registered sessions into batches, and runs
//!   [`serve_plans_streamed`](PartitionedDqServer::serve_plans_streamed)
//!   with one [`NetSink`] per session. A sink push that outlives the
//!   write deadline evicts the session (`SlowReader`) and detaches it
//!   from its frame clocks — the serving core never blocks on a
//!   socket longer than the deadline.
//!
//! Graceful shutdown: the flag stops admission, the listener exits and
//! drops its registration sender, in-flight pumps drop theirs after
//! registering, so the coordinator's channel drains to disconnection —
//! it serves every already-admitted session to completion (applying
//! all committed frames) and takes a final checkpoint before exiting,
//! which is why recovery after a drain replays zero WAL records.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mobiquery::router::PartitionedDqServer;
use mobiquery::{FrameDelta, FrameSink, NsiRecord, SessionOutcome, SessionPlan, SinkVerdict};
use obs::{EvictReason, MetricsRegistry, TraceEvent};
use storage::PageStore;

use crate::admission::Admission;
use crate::outbox::{Outbox, Pop, PushError};
use crate::pool::WorkerPool;
use crate::protocol::{
    encode, is_delta_frame, DoneOutcome, FrameReader, HelloSpec, Msg, ProtocolError,
    DEFAULT_MAX_FRAME_BYTES,
};

/// One run's insert schedule (outer: frames, inner: records per frame).
pub type RunInserts = Vec<Vec<(NsiRecord<2>, f64)>>;

/// Tunables for [`NetServer::start`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Pool workers; the hard ceiling on concurrent sessions (each
    /// live session occupies one worker).
    pub workers: usize,
    /// Admission: max live sessions (clamped to `workers`).
    pub max_sessions: usize,
    /// Admission: max live sessions per client IP.
    pub max_per_ip: usize,
    /// Bounded outbox depth, in frames.
    pub outbox_frames: usize,
    /// How long a sink push may wait on a full outbox before the
    /// session is evicted as a slow reader.
    pub write_deadline: Duration,
    /// After the first session of a batch registers, how long the
    /// coordinator waits for more before serving.
    pub gather_window: Duration,
    /// Serve as soon as this many sessions are gathered.
    pub min_gather: usize,
    /// Wire frame payload cap.
    pub max_frame_bytes: usize,
    /// Budget for reading the `Hello` after accept.
    pub handshake_timeout: Duration,
    /// Pump idle granularity (socket read timeout / outbox poll).
    pub poll_interval: Duration,
    /// Metrics registry for `net.*` counters (optional).
    pub metrics: Option<Arc<MetricsRegistry>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_sessions: 8,
            max_per_ip: 8,
            outbox_frames: 4,
            write_deadline: Duration::from_millis(200),
            gather_window: Duration::from_millis(10),
            min_gather: 1,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            handshake_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(2),
            metrics: None,
        }
    }
}

/// What the front door did over its lifetime, returned by
/// [`NetHandle::shutdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Serving runs the coordinator executed.
    pub runs: usize,
    /// Sessions served (admitted and registered).
    pub sessions: usize,
    /// Sessions evicted (slow reader, disconnect, protocol).
    pub evicted: usize,
    /// Whether the final-drain checkpoint was taken (durable servers).
    pub checkpointed: bool,
}

/// A session registered with the coordinator, awaiting its batch.
struct PendingSession {
    id: u32,
    plan: SessionPlan<2>,
    outbox: Arc<Outbox>,
}

/// State shared by listener, pumps, and coordinator.
struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    next_id: AtomicU32,
    evicted: AtomicUsize,
}

impl Shared {
    fn counter(&self, name: &str) {
        if let Some(m) = &self.config.metrics {
            m.counter(name).add(1);
        }
    }

    /// Evict `outbox` with a wire notice; first caller wins, and only
    /// the winner counts/traces.
    fn evict(&self, session: u32, outbox: &Outbox, reason: EvictReason) {
        if outbox.evict(reason, encode(&Msg::Evicted { reason })) {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            self.counter("net.sessions.evicted");
            obs::trace(TraceEvent::SessionEvicted { session, reason });
        }
    }
}

/// The serving core's per-frame sink for one network session.
struct NetSink {
    shared: Arc<Shared>,
    session: u32,
    outbox: Arc<Outbox>,
}

impl FrameSink for NetSink {
    fn on_frame(&self, delta: &FrameDelta<'_>) -> SinkVerdict {
        let bytes = encode(&Msg::Delta {
            frame: delta.frame as u32,
            latency_ns: delta.latency_ns,
            results: delta.results.to_vec(),
        });
        let len = bytes.len() as u64;
        match self.outbox.push(bytes, self.shared.config.write_deadline) {
            Ok(()) => {
                if let Some(m) = &self.shared.config.metrics {
                    m.counter("net.frames.sent").add(1);
                    m.counter("net.bytes.sent").add(len);
                }
                SinkVerdict::Continue
            }
            Err(PushError::Timeout) => {
                self.shared
                    .evict(self.session, &self.outbox, EvictReason::SlowReader);
                SinkVerdict::Detach
            }
            // The pump already evicted (disconnect / protocol): just
            // detach from the clocks.
            Err(PushError::Closed) => SinkVerdict::Detach,
        }
    }
}

/// A running front door. [`shutdown`](Self::shutdown) performs the
/// graceful drain and returns the summary; merely dropping the handle
/// runs the same drain but discards the summary.
pub struct NetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    coordinator: Option<JoinHandle<(usize, usize, bool)>>,
    pool: Option<WorkerPool>,
}

impl NetHandle {
    /// The bound address (use port 0 in `start` to pick a free port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop admission, drain every admitted session, take the final
    /// checkpoint, and return the lifetime summary.
    pub fn shutdown(mut self) -> ServerSummary {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ServerSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        // Pool joins once every pump exits; pumps exit once the
        // coordinator finishes (or evicts) their sessions — join the
        // coordinator first.
        let (runs, sessions, checkpointed) = self
            .coordinator
            .take()
            .map(|h| h.join().expect("coordinator panicked"))
            .unwrap_or_default();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        ServerSummary {
            runs,
            sessions,
            evicted: self.shared.evicted.load(Ordering::Relaxed),
            checkpointed,
        }
    }
}

impl Drop for NetHandle {
    /// A dropped handle still drains: without this, the worker pool's
    /// drop would join pump workers whose job channel the live listener
    /// keeps open — a deadlock whenever a caller (e.g. a failing test)
    /// unwinds past the handle.
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The network front door itself; see the module docs.
pub struct NetServer;

impl NetServer {
    /// Bind `addr` and start serving `core` over it. `run_inserts` is
    /// a queue of per-run insert schedules: the coordinator's `r`-th
    /// serving run applies the `r`-th schedule (empty once exhausted).
    pub fn start<S>(
        core: PartitionedDqServer<2, S>,
        run_inserts: Vec<RunInserts>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<NetHandle>
    where
        S: PageStore + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU32::new(0),
            evicted: AtomicUsize::new(0),
        });
        let admission = Arc::new(Admission::new(
            config.max_sessions.min(config.workers),
            config.max_per_ip,
        ));
        let pool = WorkerPool::new(config.workers, "net-pump");
        let (reg_tx, reg_rx) = mpsc::channel::<PendingSession>();

        let listener_thread = {
            let shared = Arc::clone(&shared);
            let admission = Arc::clone(&admission);
            let pool_tx = pool_sender(&pool);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    listener_loop(listener, shared, admission, pool_tx, reg_tx);
                })
                .expect("spawn listener")
        };

        let coordinator_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("net-coord".into())
                .spawn(move || coordinator_loop(core, run_inserts, shared, reg_rx))
                .expect("spawn coordinator")
        };

        Ok(NetHandle {
            addr: bound,
            shared,
            listener: Some(listener_thread),
            coordinator: Some(coordinator_thread),
            pool: Some(pool),
        })
    }
}

/// The pool's `execute` needs to be callable from the listener thread
/// while `NetHandle` still owns the pool for the final join — hand the
/// listener a closure-backed dispatcher instead of the pool itself.
type PumpJob = Box<dyn FnOnce() + Send + 'static>;

fn pool_sender(pool: &WorkerPool) -> impl Fn(PumpJob) -> bool + Send + 'static {
    // WorkerPool::execute only needs &self; clone its sender by
    // wrapping dispatch in a channel of jobs? Simpler: the pool's own
    // channel is already MPSC — expose it via a thin adapter.
    let tx = pool.job_sender();
    move |job| tx.send(job).is_ok()
}

fn listener_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    admission: Arc<Admission>,
    dispatch: impl Fn(PumpJob) -> bool,
    reg_tx: mpsc::Sender<PendingSession>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => match admission.admit(peer.ip()) {
                Ok(guard) => {
                    let shared = Arc::clone(&shared);
                    let reg_tx = reg_tx.clone();
                    let job: PumpJob = Box::new(move || {
                        let _slot = guard;
                        session_pump(stream, shared, reg_tx);
                    });
                    if !dispatch(job) {
                        return;
                    }
                }
                Err(reason) => {
                    shared.counter(match reason {
                        crate::protocol::RejectReason::Busy => "net.conns.rejected.busy",
                        crate::protocol::RejectReason::Overloaded => {
                            "net.conns.rejected.overloaded"
                        }
                    });
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = stream.write_all(&encode(&Msg::Rejected { reason }));
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    // reg_tx drops here: once in-flight pumps have registered, the
    // coordinator's channel disconnects and it can drain out.
}

/// Read one complete `Hello` within the handshake budget.
fn read_hello(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<HelloSpec, Option<ProtocolError>> {
    let budget = shared.config.handshake_timeout;
    let start = std::time::Instant::now();
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval.max(Duration::from_millis(1))));
    let mut reader = FrameReader::new(shared.config.max_frame_bytes);
    let mut buf = [0u8; 4096];
    loop {
        match reader.next_msg() {
            Ok(Some(Msg::Hello(h))) => return Ok(h),
            Ok(Some(_)) => {
                return Err(Some(ProtocolError::Malformed(
                    "first message must be Hello".into(),
                )))
            }
            Ok(None) => {}
            Err(e) => return Err(Some(e)),
        }
        if start.elapsed() >= budget {
            return Err(None); // silent: the peer just never spoke
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // EOF mid-handshake: truncated stream if partial bytes
                // were seen, otherwise a probe that closed politely.
                return Err(reader.has_partial().then_some(ProtocolError::Truncated));
            }
            Ok(n) => reader.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Err(None),
        }
    }
}

/// One admitted connection's whole lifetime on a pool worker.
fn session_pump(mut stream: TcpStream, shared: Arc<Shared>, reg_tx: mpsc::Sender<PendingSession>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.write_deadline));

    let hello = match read_hello(&mut stream, &shared) {
        Ok(h) => h,
        Err(proto_err) => {
            if proto_err.is_some() {
                // Typed containment: tell the peer why, then close.
                let _ = stream.write_all(&encode(&Msg::Evicted {
                    reason: EvictReason::Protocol,
                }));
                shared.counter("net.conns.rejected.protocol");
            }
            return;
        }
    };
    let plan = hello.to_plan();
    let mut credit: u64 = hello.credit as u64;

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let outbox = Arc::new(Outbox::new(shared.config.outbox_frames));
    // Register BEFORE confirming: a client that saw `Admitted` is
    // guaranteed to be in some batch, and sequential admits land in
    // registration order.
    if reg_tx
        .send(PendingSession {
            id,
            plan,
            outbox: Arc::clone(&outbox),
        })
        .is_err()
    {
        return; // coordinator already gone (shutdown race)
    }
    drop(reg_tx); // the coordinator must see disconnection on drain
    if stream.write_all(&encode(&Msg::Admitted { session: id })).is_err() {
        shared.evict(id, &outbox, EvictReason::Disconnected);
        return;
    }
    shared.counter("net.conns.accepted");
    obs::trace(TraceEvent::ConnAccepted { session: id });

    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let mut reader = FrameReader::new(shared.config.max_frame_bytes);
    let mut buf = [0u8; 4096];
    let mut saw_bye = false;
    let mut read_open = true;

    loop {
        // Write step: drain whatever the outbox will release.
        loop {
            match outbox.pop(credit > 0, Duration::ZERO) {
                Pop::Frame(bytes) => {
                    let delta = is_delta_frame(&bytes);
                    if stream.write_all(&bytes).is_err() {
                        shared.evict(id, &outbox, EvictReason::Disconnected);
                        return;
                    }
                    if delta {
                        credit -= 1;
                    }
                }
                Pop::Idle => break,
                Pop::Exhausted => {
                    let _ = stream.flush();
                    graceful_close(stream, &shared);
                    return;
                }
            }
        }
        // Read step: blocks up to poll_interval, which paces the loop.
        if !read_open {
            std::thread::sleep(shared.config.poll_interval);
            continue;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if saw_bye {
                    // Orderly half-close: keep writing results.
                    read_open = false;
                } else {
                    shared.evict(id, &outbox, EvictReason::Disconnected);
                    // Drain the notice attempt, then exit via Exhausted.
                }
            }
            Ok(n) => {
                reader.extend(&buf[..n]);
                loop {
                    match reader.next_msg() {
                        Ok(Some(Msg::Credit { n })) => credit = credit.saturating_add(n as u64),
                        Ok(Some(Msg::Bye)) => saw_bye = true,
                        Ok(Some(_)) => {
                            shared.evict(id, &outbox, EvictReason::Protocol);
                            read_open = false;
                            break;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            shared.evict(id, &outbox, EvictReason::Protocol);
                            read_open = false;
                            break;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                shared.evict(id, &outbox, EvictReason::Disconnected);
                read_open = false;
            }
        }
    }
}

/// Half-close after the terminal frame, then briefly drain the read
/// side. Closing outright would turn a late `Credit`/`Bye` from the
/// peer into an RST, which destroys the terminal frame still sitting
/// in the peer's receive buffer — the peer would see a dead socket
/// instead of its `Done`.
fn graceful_close(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = std::time::Instant::now() + shared.config.write_deadline;
    let mut buf = [0u8; 1024];
    while std::time::Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break, // peer's FIN: both directions closed cleanly
            Ok(_) => {}     // stray credits/Bye: discard
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// Map a served session's outcome onto the wire enum.
fn wire_outcome(outcome: &SessionOutcome) -> DoneOutcome {
    match outcome {
        SessionOutcome::Ok => DoneOutcome::Ok,
        SessionOutcome::Degraded { .. } => DoneOutcome::Degraded,
        SessionOutcome::Failed(_) => DoneOutcome::Failed,
    }
}

fn coordinator_loop<S>(
    core: PartitionedDqServer<2, S>,
    run_inserts: Vec<RunInserts>,
    shared: Arc<Shared>,
    reg_rx: mpsc::Receiver<PendingSession>,
) -> (usize, usize, bool)
where
    S: PageStore + Send + Sync,
{
    let mut inserts_queue: std::collections::VecDeque<RunInserts> = run_inserts.into();
    let mut runs = 0usize;
    let mut sessions = 0usize;
    let mut disconnected = false;

    while !disconnected {
        // Gather a batch: block for the first registration, then give
        // stragglers `gather_window` (or until `min_gather`) to pile on.
        let mut batch: Vec<PendingSession> = Vec::new();
        match reg_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(p) => batch.push(p),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        let window_start = std::time::Instant::now();
        while batch.len() < shared.config.min_gather {
            let left = shared
                .config
                .gather_window
                .saturating_sub(window_start.elapsed());
            if left.is_zero() {
                break;
            }
            match reg_rx.recv_timeout(left) {
                Ok(p) => batch.push(p),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        serve_batch(&core, &mut inserts_queue, &shared, &batch);
        runs += 1;
        sessions += batch.len();
    }

    // Shutdown drain: every committed frame was applied inside the
    // last run; seal the state so recovery replays nothing.
    let checkpointed = core.checkpoint_now();
    (runs, sessions, checkpointed)
}

fn serve_batch<S>(
    core: &PartitionedDqServer<2, S>,
    inserts_queue: &mut std::collections::VecDeque<RunInserts>,
    shared: &Arc<Shared>,
    batch: &[PendingSession],
) where
    S: PageStore + Send + Sync,
{
    let inserts = inserts_queue.pop_front().unwrap_or_default();
    let plans: Vec<SessionPlan<2>> = batch.iter().map(|p| p.plan.clone()).collect();
    let sinks_owned: Vec<NetSink> = batch
        .iter()
        .map(|p| NetSink {
            shared: Arc::clone(shared),
            session: p.id,
            outbox: Arc::clone(&p.outbox),
        })
        .collect();
    let sinks: Vec<Option<&dyn FrameSink>> =
        sinks_owned.iter().map(|s| Some(s as &dyn FrameSink)).collect();

    let report = core.serve_plans_streamed(&plans, &inserts, &sinks);

    for (i, p) in batch.iter().enumerate() {
        let out = &report.base.sessions[i];
        p.outbox.finish(encode(&Msg::Done {
            outcome: wire_outcome(&out.outcome),
            frames: out.frames.len() as u32,
            results: out.results.len() as u64,
        }));
        if let Some(m) = &shared.config.metrics {
            m.gauge("net.outbox.hwm").record_max(p.outbox.hwm() as i64);
        }
    }
}
