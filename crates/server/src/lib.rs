//! # server — the network front door for the serving core
//!
//! The paper's continuous PDQ/NPDQ sessions (§4) are in-process
//! constructs; this crate puts them behind a TCP process boundary
//! without letting any client take the serving core down:
//!
//! * [`protocol`] — a hand-rolled length-prefixed binary codec (no
//!   external deps). Every malformed, truncated, oversized, or
//!   garbage byte stream maps to a typed [`ProtocolError`]; no input
//!   can panic the decoder or balloon an allocation.
//! * [`admission`] — a server-wide live-session cap and a per-IP cap
//!   checked before any session state exists; refused connections get
//!   a typed `Rejected{Busy, Overloaded}` frame.
//! * [`outbox`] — a bounded per-session queue of encoded frame
//!   deltas between the serving core and the socket pump. A full
//!   queue past the write deadline is the slow-reader signal: the
//!   session is evicted and detached from its region frame clocks, so
//!   a stalled socket back-pressures nothing.
//! * [`server`] — the listener / pump / coordinator threads, credit
//!   flow control, and the graceful-shutdown drain (stop admission,
//!   serve what was admitted, final checkpoint).
//! * [`client`] — the blocking reference client, including the chaos
//!   behaviors (stall, vanish, garbage) the robustness suite drives.

pub mod admission;
pub mod client;
pub mod outbox;
pub mod pool;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmitGuard};
pub use client::{ClientBehavior, ClientDelta, ClientOutcome, ClientRun, NetClient};
pub use outbox::{Outbox, Pop, PushError};
pub use protocol::{
    decode_payload, encode, DoneOutcome, FrameReader, HelloSpec, Msg, ProtocolError, RejectReason,
    DEFAULT_MAX_FRAME_BYTES, MAX_FRAME_TIMES, MAX_KEYS, PROTO_VERSION,
};
pub use server::{NetHandle, NetServer, RunInserts, ServerConfig, ServerSummary};
