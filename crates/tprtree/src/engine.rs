//! Dynamic queries over the TPR-tree — future work (iii) realized.
//!
//! The §4.1 best-first algorithm transfers unchanged: a priority queue
//! ordered by overlap-start time, nodes expanded lazily, each object
//! returned once with its visibility time set. The only new geometry is
//! the overlap time of a linearly-moving query window with a linearly-
//! moving bounding rectangle ([`overlap_window_tpbox`]) — still a
//! conjunction of linear inequalities.

use crate::batch::TpBoxBatch;
use crate::record::TprRecord;
use crate::tpbox::TpBox;
use mobiquery::{QueryStats, Trajectory};
use rtree::{Inserted, TreeRead};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use storage::PageId;
use stkit::{Interval, MovingWindow, TimeSet};

/// Overlap time of one trapezoid trajectory segment with a
/// time-parameterized box: `window.hi_i(t) ≥ box.lo_i(t)` and
/// `window.lo_i(t) ≤ box.hi_i(t)` for both axes, within both validities.
pub fn overlap_window_tpbox(w: &MovingWindow<2>, b: &TpBox) -> Interval {
    let mut t = w.span.intersect(&b.active);
    for i in 0..2 {
        if t.is_empty() {
            return Interval::EMPTY;
        }
        t = t.intersect(&w.hi[i].solve_ge_form(&b.axes[i].lo_form()));
        t = t.intersect(&w.lo[i].solve_le_form(&b.axes[i].hi_form()));
    }
    t
}

/// Overlap time set of a whole trajectory with a time-parameterized box.
pub fn overlap_trajectory_tpbox(traj: &Trajectory<2>, b: &TpBox) -> TimeSet {
    let mut out = TimeSet::empty();
    for s in traj.segments() {
        out.insert(overlap_window_tpbox(s, b));
    }
    out
}

/// One answer: the moving point plus its visibility time set.
#[derive(Clone, Debug, PartialEq)]
pub struct TprResult {
    /// The record.
    pub record: TprRecord,
    /// Times the object is inside the moving window.
    pub visibility: TimeSet,
}

enum ItemKind {
    Node { page: PageId, level: u32 },
    Object(Box<TprResult>),
}

struct QueueItem {
    start: f64,
    end: f64,
    kind: ItemKind,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.start.total_cmp(&self.start)
    }
}

/// A running dynamic query over a TPR-tree.
pub struct TprDynamicQuery {
    trajectory: Trajectory<2>,
    queue: BinaryHeap<QueueItem>,
    expanded: HashSet<PageId>,
    returned: HashSet<(u32, u32)>,
    stats: QueryStats,
    /// SoA staging for one node page's entries (scratch, reused).
    batch: TpBoxBatch,
    /// Per-entry overlap time sets from the last batch solve (scratch).
    ts_out: Vec<TimeSet>,
    /// Leaf records staged alongside `batch` (scratch).
    pending_recs: Vec<TprRecord>,
    /// Child pages staged alongside `batch` (scratch).
    pending_children: Vec<PageId>,
}

impl TprDynamicQuery {
    /// Start the query: seed with the root over the trajectory span.
    pub fn start<T: TreeRead<TprRecord> + ?Sized>(tree: &T, trajectory: Trajectory<2>) -> Self {
        let span = trajectory.span();
        let mut q = TprDynamicQuery {
            trajectory,
            queue: BinaryHeap::new(),
            expanded: HashSet::new(),
            returned: HashSet::new(),
            stats: QueryStats::default(),
            batch: TpBoxBatch::new(),
            ts_out: Vec::new(),
            pending_recs: Vec::new(),
            pending_children: Vec::new(),
        };
        q.queue.push(QueueItem {
            start: span.lo,
            end: span.hi,
            kind: ItemKind::Node {
                page: tree.root_page(),
                level: tree.height() - 1,
            },
        });
        q
    }

    /// Accumulated cost.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Take and reset the accumulated cost.
    pub fn take_stats(&mut self) -> QueryStats {
        std::mem::take(&mut self.stats)
    }

    /// Solve the staged batch against every trajectory segment, building
    /// one overlap [`TimeSet`] per staged entry. Segment-order insertion
    /// keeps the result bit-identical to [`overlap_trajectory_tpbox`].
    fn solve_batch(&mut self) {
        self.ts_out.clear();
        self.ts_out.resize(self.batch.len(), TimeSet::empty());
        for s in self.trajectory.segments() {
            self.batch.solve(s);
            for j in 0..self.ts_out.len() {
                self.ts_out[j].insert(self.batch.result(j));
            }
        }
    }

    /// `getNext(t_start, t_end)` over the TPR-tree.
    pub fn get_next<T: TreeRead<TprRecord> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
    ) -> Option<TprResult> {
        loop {
            let head = self.queue.peek()?;
            if head.start > t_end {
                return None;
            }
            let item = self.queue.pop().expect("peeked");
            if item.end < t_start {
                continue;
            }
            match item.kind {
                ItemKind::Object(r) => {
                    if self.returned.insert((r.record.oid, r.record.seq)) {
                        self.stats.results += 1;
                        return Some(*r);
                    }
                    self.stats.duplicates_skipped += 1;
                }
                ItemKind::Node { page, level } => {
                    if !self.expanded.insert(page) {
                        self.stats.duplicates_skipped += 1;
                        continue;
                    }
                    // Zero-copy visit: entries decode lazily off the page.
                    let node = tree.read_node(page);
                    self.stats.disk_accesses += 1;
                    if level == 0 {
                        self.stats.leaf_accesses += 1;
                    }
                    if node.is_leaf() {
                        // Stage the whole page, solve once per trajectory
                        // segment, then enqueue survivors.
                        self.batch.clear();
                        self.pending_recs.clear();
                        for rec in node.leaf_records() {
                            self.stats.distance_computations += 1;
                            if self.returned.contains(&(rec.oid, rec.seq)) {
                                continue;
                            }
                            self.batch.push(&rec.tpbox());
                            self.pending_recs.push(rec);
                        }
                        self.solve_batch();
                        for j in 0..self.pending_recs.len() {
                            let ts = std::mem::take(&mut self.ts_out[j]);
                            if let (Some(s), Some(e)) = (ts.start(), ts.end()) {
                                if e >= t_start {
                                    self.queue.push(QueueItem {
                                        start: s,
                                        end: e,
                                        kind: ItemKind::Object(Box::new(TprResult {
                                            record: self.pending_recs[j],
                                            visibility: ts,
                                        })),
                                    });
                                }
                            }
                        }
                    } else {
                        let child_level = node.level() - 1;
                        self.batch.clear();
                        self.pending_children.clear();
                        for (key, child) in node.internal_entries() {
                            self.stats.distance_computations += 1;
                            self.batch.push(&key);
                            self.pending_children.push(child);
                        }
                        self.solve_batch();
                        for j in 0..self.pending_children.len() {
                            let ts = std::mem::take(&mut self.ts_out[j]);
                            if let (Some(s), Some(e)) = (ts.start(), ts.end()) {
                                if e >= t_start {
                                    self.queue.push(QueueItem {
                                        start: s,
                                        end: e,
                                        kind: ItemKind::Node {
                                            page: self.pending_children[j],
                                            level: child_level,
                                        },
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Drain every object visible during `[t_start, t_end]`.
    pub fn drain_window<T: TreeRead<TprRecord> + ?Sized>(
        &mut self,
        tree: &T,
        t_start: f64,
        t_end: f64,
    ) -> Vec<TprResult> {
        let mut out = Vec::new();
        while let Some(r) = self.get_next(tree, t_start, t_end) {
            out.push(r);
        }
        out
    }

    /// §4.1 update management: forward insertion reports from
    /// `tree.insert` (a motion update of an object).
    pub fn notify<T: TreeRead<TprRecord> + ?Sized>(
        &mut self,
        _tree: &T,
        report: &rtree::InsertReport<TpBox, TprRecord>,
    ) {
        match &report.notify {
            Inserted::Record(rec) => {
                if self.returned.contains(&(rec.oid, rec.seq)) {
                    return;
                }
                let ts = overlap_trajectory_tpbox(&self.trajectory, &rec.tpbox());
                if let (Some(s), Some(e)) = (ts.start(), ts.end()) {
                    self.queue.push(QueueItem {
                        start: s,
                        end: e,
                        kind: ItemKind::Object(Box::new(TprResult {
                            record: *rec,
                            visibility: ts,
                        })),
                    });
                }
            }
            Inserted::Subtree { page, key, level } => {
                let ts = overlap_trajectory_tpbox(&self.trajectory, key);
                if let (Some(s), Some(e)) = (ts.start(), ts.end()) {
                    self.expanded.remove(page);
                    self.queue.push(QueueItem {
                        start: s,
                        end: e,
                        kind: ItemKind::Node {
                            page: *page,
                            level: *level,
                        },
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree::{RTree, RTreeConfig};
    use storage::Pager;
    use stkit::Rect;

    /// n objects moving right at speed 1, object i starting at (i, 0.5).
    fn tree(n: u32) -> RTree<TprRecord, Pager> {
        let mut t = RTree::new(Pager::new(), RTreeConfig::default());
        for i in 0..n {
            t.insert(
                TprRecord::new(
                    i,
                    0,
                    Interval::new(0.0, 100.0),
                    [i as f64, 0.5],
                    [1.0, 0.0],
                ),
                0.0,
            );
        }
        t
    }

    #[test]
    fn stationary_window_sees_passers_by() {
        // Window fixed at x ∈ [10, 11]: object i (at i + t) is inside
        // during t ∈ [10 − i, 11 − i].
        let tr = tree(10);
        let traj = Trajectory::linear(
            Rect::from_corners([10.0, 0.0], [11.0, 1.0]),
            [0.0, 0.0],
            Interval::new(0.0, 12.0),
            2,
        );
        let mut q = TprDynamicQuery::start(&tr, traj);
        let results = q.drain_window(&tr, 0.0, 12.0);
        assert_eq!(results.len(), 10);
        // Object 9 (starting at x=9) arrives first, then 8, 7, …
        let oids: Vec<u32> = results.iter().map(|r| r.record.oid).collect();
        assert_eq!(oids[0], 9);
        assert_eq!(
            results[0].visibility.hull(),
            Interval::new(1.0, 2.0),
            "object 9 inside during [1, 2]"
        );
        let mut sorted = oids.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(oids, sorted, "arrival in reverse id order");
    }

    #[test]
    fn co_moving_window_keeps_one_object() {
        // Window moving right at speed 1 starting around object 5.
        let tr = tree(10);
        let traj = Trajectory::linear(
            Rect::from_corners([4.6, 0.0], [5.4, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, 50.0),
            2,
        );
        let mut q = TprDynamicQuery::start(&tr, traj);
        let results = q.drain_window(&tr, 0.0, 50.0);
        assert_eq!(results.len(), 1, "only the co-moving object stays");
        assert_eq!(results[0].record.oid, 5);
        assert_eq!(results[0].visibility.hull(), Interval::new(0.0, 50.0));
    }

    #[test]
    fn io_bounded_and_no_duplicates() {
        let tr = tree(2000);
        let inv = tr.validate().unwrap();
        let traj = Trajectory::linear(
            Rect::from_corners([500.0, 0.0], [510.0, 1.0]),
            [0.0, 0.0],
            Interval::new(0.0, 20.0),
            2,
        );
        let mut q = TprDynamicQuery::start(&tr, traj);
        let mut seen = HashSet::new();
        let mut t = 0.0;
        while t < 20.0 {
            for r in q.drain_window(&tr, t, t + 0.5) {
                assert!(seen.insert((r.record.oid, r.record.seq)));
            }
            t += 0.5;
        }
        assert!(q.stats().disk_accesses <= inv.nodes);
        assert!(!seen.is_empty());
    }

    #[test]
    fn live_motion_update_found() {
        let mut tr = tree(5);
        let traj = Trajectory::linear(
            Rect::from_corners([50.0, 0.0], [52.0, 1.0]),
            [0.0, 0.0],
            Interval::new(0.0, 60.0),
            2,
        );
        let mut q = TprDynamicQuery::start(&tr, traj);
        let _ = q.drain_window(&tr, 0.0, 5.0);
        // A new object appears at t=5, heading for the window.
        let rec = TprRecord::new(99, 0, Interval::new(5.0, 100.0), [45.0, 0.5], [1.0, 0.0]);
        let report = tr.insert(rec, 5.0);
        q.notify(&tr, &report);
        let later = q.drain_window(&tr, 5.0, 60.0);
        assert!(later.iter().any(|r| r.record.oid == 99));
    }

    #[test]
    fn brute_force_agreement() {
        // Random-ish fan of headings; compare against direct evaluation.
        let mut tr: RTree<TprRecord, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
        let mut recs = Vec::new();
        for i in 0..500u32 {
            let ang = i as f64 * 2.399;
            let p = [50.0 + (i % 40) as f64 - 20.0, 50.0 + (i / 40) as f64 - 6.0];
            let v = [0.8 * ang.cos(), 0.8 * ang.sin()];
            let r = TprRecord::new(i, 0, Interval::new(0.0, 30.0), p, v);
            recs.push(r);
            tr.insert(r, 0.0);
        }
        let traj = Trajectory::linear(
            Rect::from_corners([45.0, 45.0], [55.0, 55.0]),
            [0.5, 0.2],
            Interval::new(2.0, 20.0),
            4,
        );
        let expected: HashSet<u32> = recs
            .iter()
            .filter(|r| !overlap_trajectory_tpbox(&traj, &r.tpbox()).is_empty())
            .map(|r| r.oid)
            .collect();
        let mut q = TprDynamicQuery::start(&tr, traj);
        let got: HashSet<u32> = q
            .drain_window(&tr, 2.0, 20.0)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        assert_eq!(got, expected);
    }
}
