//! # tprtree — a time-parameterized R-tree for current and future motion
//!
//! The paper's future work (iii): "adapting dynamic queries to a
//! specialized index for mobile objects such as TPR-tree \[19\]" (Šaltenis,
//! Jensen, Leutenegger, Lopez — SIGMOD 2000). Where the NSI index of the
//! main reproduction stores *historical* motion segments by their static
//! space-time bounding boxes, a TPR-tree stores each object's **current
//! motion**: a moving point, bounded by node rectangles whose edges
//! themselves move linearly with time.
//!
//! The implementation reuses the entire paginated R-tree substrate: a
//! [`TpBox`] implements `rtree::Key` (with volume/margin defined as the
//! *integrals* over the box's active time window, after the TPR-tree's
//! integrated-area insertion goodness), and a [`TprRecord`] implements
//! `rtree::Record`, so `rtree::RTree<TprRecord, S>` *is* the TPR-tree —
//! insertion with same-path splits, bulk loading, deletion and node
//! timestamps all come for free.
//!
//! On top, [`TprDynamicQuery`] runs the §4.1 best-first algorithm against
//! the moving-window trajectory: the overlap time of a linearly-moving
//! query window with a linearly-moving bounding rectangle is still a
//! conjunction of linear inequalities, so `stkit::LinearForm` solves it
//! exactly — the same geometry kit powers both index families.

// Numeric kernels iterate several fixed-size arrays in lockstep; index
// loops keep the per-axis math symmetric and readable.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod engine;
pub mod record;
pub mod tpbox;

pub use batch::TpBoxBatch;
pub use engine::TprDynamicQuery;
pub use record::TprRecord;
pub use tpbox::TpBox;

/// A TPR-tree over 2-d moving points, on any page store.
pub type TprTree<S> = rtree::RTree<TprRecord, S>;
