//! Time-parameterized bounding rectangles.
//!
//! A `TpBox` bounds a set of moving points over an *active* time window:
//! along each axis the lower edge moves as `lo(t) = lo₀ + v_lo·t` and the
//! upper edge as `hi(t) = hi₀ + v_hi·t` (absolute time; the reference
//! instant is t = 0). Conservativeness across `cover` comes from taking
//! `min`/`max` of both the positions *at the cover's anchor* and the edge
//! velocities — the classic TPR-tree construction.

use rtree::stbox_key::{f32_down, f32_up};
use rtree::Key;
use stkit::{Interval, LinearForm, Rect, Scalar};

/// One axis of a time-parameterized box: two moving edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TpAxis {
    /// Lower edge position at t = 0.
    pub lo0: Scalar,
    /// Lower edge velocity (most negative of the covered points).
    pub v_lo: Scalar,
    /// Upper edge position at t = 0.
    pub hi0: Scalar,
    /// Upper edge velocity (most positive of the covered points).
    pub v_hi: Scalar,
}

impl TpAxis {
    /// The empty axis.
    pub const EMPTY: TpAxis = TpAxis {
        lo0: Scalar::INFINITY,
        v_lo: 0.0,
        hi0: Scalar::NEG_INFINITY,
        v_hi: 0.0,
    };

    /// Lower edge as a linear form of absolute time.
    pub fn lo_form(&self) -> LinearForm {
        LinearForm {
            a: self.lo0,
            b: self.v_lo,
        }
    }

    /// Upper edge as a linear form of absolute time.
    pub fn hi_form(&self) -> LinearForm {
        LinearForm {
            a: self.hi0,
            b: self.v_hi,
        }
    }

    /// Extent `[lo(t), hi(t)]` at time `t`.
    pub fn extent_at(&self, t: Scalar) -> Interval {
        Interval::new(self.lo_form().eval(t), self.hi_form().eval(t))
    }

    fn cover(&self, other: &TpAxis, anchor: Scalar) -> TpAxis {
        // Conservative union: anchor both, take extreme positions at the
        // anchor and extreme velocities. Never shrinks afterwards.
        let lo0_at = self.lo_form().eval(anchor).min(other.lo_form().eval(anchor));
        let hi0_at = self.hi_form().eval(anchor).max(other.hi_form().eval(anchor));
        let v_lo = self.v_lo.min(other.v_lo);
        let v_hi = self.v_hi.max(other.v_hi);
        TpAxis {
            lo0: lo0_at - v_lo * anchor,
            v_lo,
            hi0: hi0_at - v_hi * anchor,
            v_hi,
        }
    }
}

/// A time-parameterized box over `D = 2` spatial axes, active during
/// `active` (conservatively, the time the covered motions are defined).
///
/// Implements [`rtree::Key`] with the TPR-tree's integrated metrics:
/// `volume`/`margin` are the integrals of the instantaneous values over
/// the active window, so Guttman's least-enlargement ChooseLeaf becomes
/// the TPR-tree's least *integrated* area enlargement, and the split
/// policies optimize integrated goodness — no changes to the `rtree`
/// crate required.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TpBox {
    /// Per-axis moving edges.
    pub axes: [TpAxis; 2],
    /// Active time window.
    pub active: Interval,
}

impl TpBox {
    /// The empty box.
    pub const EMPTY: TpBox = TpBox {
        axes: [TpAxis::EMPTY; 2],
        active: Interval::EMPTY,
    };

    /// A moving point: position `p` at time `t0`, velocity `v`, active
    /// from `t0` to `t1`.
    pub fn moving_point(p: [Scalar; 2], v: [Scalar; 2], active: Interval) -> Self {
        let mut axes = [TpAxis::EMPTY; 2];
        for i in 0..2 {
            let a = p[i] - v[i] * active.lo;
            axes[i] = TpAxis {
                lo0: a,
                v_lo: v[i],
                hi0: a,
                v_hi: v[i],
            };
        }
        TpBox { axes, active }
    }

    /// A stationary box active over a window (used for query regions).
    pub fn stationary(rect: &Rect<2>, active: Interval) -> Self {
        let mut axes = [TpAxis::EMPTY; 2];
        for i in 0..2 {
            axes[i] = TpAxis {
                lo0: rect.extent(i).lo,
                v_lo: 0.0,
                hi0: rect.extent(i).hi,
                v_hi: 0.0,
            };
        }
        TpBox { axes, active }
    }

    /// The static rectangle this box covers at instant `t` (clamped into
    /// the active window).
    ///
    /// An empty active window bounds no instants at all, so the answer is
    /// [`Rect::EMPTY`]. The previous behaviour clamped `t` into the empty
    /// interval, which evaluates the edge forms at ±∞ and can yield an
    /// *inverted or infinite* rectangle that silently passes overlap
    /// checks (debug builds asserted; release builds returned garbage).
    pub fn rect_at(&self, t: Scalar) -> Rect<2> {
        if self.active.is_empty() {
            return Rect::EMPTY;
        }
        let t = self.active.clamp(t);
        Rect::new([self.axes[0].extent_at(t), self.axes[1].extent_at(t)])
    }

    /// The set of instants in `window` at which this box overlaps `other`
    /// — a conjunction of linear inequalities, exact.
    ///
    /// Always the canonical [`Interval::EMPTY`] when no such instant
    /// exists — in particular when either active window is empty — never
    /// a non-canonical inverted interval.
    pub fn overlap_time(&self, other: &TpBox) -> Interval {
        let mut t = self.active.intersect(&other.active);
        for i in 0..2 {
            if t.is_empty() {
                return Interval::EMPTY;
            }
            // self.lo(t) ≤ other.hi(t) ∧ self.hi(t) ≥ other.lo(t)
            t = t.intersect(&self.axes[i].lo_form().solve_le_form(&other.axes[i].hi_form()));
            t = t.intersect(&self.axes[i].hi_form().solve_ge_form(&other.axes[i].lo_form()));
        }
        if t.is_empty() {
            return Interval::EMPTY;
        }
        t
    }

    /// Instantaneous area at time `t`.
    pub fn area_at(&self, t: Scalar) -> Scalar {
        let a = self.axes[0].extent_at(t).length();
        let b = self.axes[1].extent_at(t).length();
        a * b
    }

    /// Integrated area over the active window (exact: the integrand is a
    /// quadratic in `t`, so Simpson's rule is exact).
    pub fn integrated_area(&self) -> Scalar {
        if self.active.is_empty() || self.is_empty() {
            return 0.0;
        }
        let (a, b) = (self.active.lo, self.active.hi);
        if a == b {
            return self.area_at(a);
        }
        let m = 0.5 * (a + b);
        (b - a) / 6.0 * (self.area_at(a) + 4.0 * self.area_at(m) + self.area_at(b))
    }

    /// Integrated margin (perimeter/2) over the active window (linear
    /// integrand ⇒ trapezoid rule is exact).
    pub fn integrated_margin(&self) -> Scalar {
        if self.active.is_empty() || self.is_empty() {
            return 0.0;
        }
        let per = |t: Scalar| {
            self.axes[0].extent_at(t).length() + self.axes[1].extent_at(t).length()
        };
        let (a, b) = (self.active.lo, self.active.hi);
        if a == b {
            return per(a);
        }
        0.5 * (b - a) * (per(a) + per(b))
    }
}

impl Key for TpBox {
    // Per axis: lo0, v_lo, hi0, v_hi (4 × f32) ×2 + active (2 × f32).
    const ENCODED_LEN: usize = 2 * 16 + 8;
    const AXES: usize = 3; // two spatial + the active-time axis (for STR)

    fn empty() -> Self {
        TpBox::EMPTY
    }

    fn is_empty(&self) -> bool {
        self.active.is_empty()
            || self
                .axes
                .iter()
                .any(|a| a.lo_form().eval(self.active.mid()) > a.hi_form().eval(self.active.mid())
                    && a.lo0 > a.hi0)
    }

    fn cover(&self, other: &Self) -> Self {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let active = self.active.cover(&other.active);
        let anchor = active.lo;
        TpBox {
            axes: [
                self.axes[0].cover(&other.axes[0], anchor),
                self.axes[1].cover(&other.axes[1], anchor),
            ],
            active,
        }
    }

    fn intersect(&self, other: &Self) -> Self {
        // Conservative: intersect actives; keep the tighter edges at the
        // intersection anchor with the *less* conservative velocities
        // swapped inward. Used only by discardability-style tests, which
        // TPR queries do not employ; a conservative over-approximation
        // (self clipped to the shared active window) is safe there.
        let active = self.active.intersect(&other.active);
        if active.is_empty() {
            return TpBox::EMPTY;
        }
        TpBox {
            axes: self.axes,
            active,
        }
    }

    fn overlaps(&self, other: &Self) -> bool {
        !self.overlap_time(other).is_empty()
    }

    fn contains(&self, other: &Self) -> bool {
        // Conservative containment: at both ends of the other's active
        // window and with dominating velocities.
        if other.is_empty() {
            return true;
        }
        if !self.active.contains_interval(&other.active) {
            return false;
        }
        for i in 0..2 {
            let (s, o) = (&self.axes[i], &other.axes[i]);
            for t in [other.active.lo, other.active.hi] {
                if s.lo_form().eval(t) > o.lo_form().eval(t)
                    || s.hi_form().eval(t) < o.hi_form().eval(t)
                {
                    return false;
                }
            }
        }
        true
    }

    fn volume(&self) -> f64 {
        self.integrated_area()
    }

    fn margin(&self) -> f64 {
        self.integrated_margin()
    }

    fn enlargement(&self, other: &Self) -> f64 {
        self.cover(other).volume() - self.volume()
    }

    fn axis_lo(&self, axis: usize) -> f64 {
        if axis < 2 {
            let a = &self.axes[axis];
            a.lo_form()
                .eval(self.active.lo)
                .min(a.lo_form().eval(self.active.hi))
        } else {
            self.active.lo
        }
    }

    fn axis_hi(&self, axis: usize) -> f64 {
        if axis < 2 {
            let a = &self.axes[axis];
            a.hi_form()
                .eval(self.active.lo)
                .max(a.hi_form().eval(self.active.hi))
        } else {
            self.active.hi
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for a in &self.axes {
            buf.extend_from_slice(&f32_down(a.lo0).to_le_bytes());
            buf.extend_from_slice(&f32_down(a.v_lo).to_le_bytes());
            buf.extend_from_slice(&f32_up(a.hi0).to_le_bytes());
            buf.extend_from_slice(&f32_up(a.v_hi).to_le_bytes());
        }
        buf.extend_from_slice(&f32_down(self.active.lo).to_le_bytes());
        buf.extend_from_slice(&f32_up(self.active.hi).to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let f = |o: usize| f32::from_le_bytes(buf[o..o + 4].try_into().unwrap()) as f64;
        let mut axes = [TpAxis::EMPTY; 2];
        for (i, a) in axes.iter_mut().enumerate() {
            let o = i * 16;
            *a = TpAxis {
                lo0: f(o),
                v_lo: f(o + 4),
                hi0: f(o + 8),
                v_hi: f(o + 12),
            };
        }
        TpBox {
            axes,
            active: Interval::new(f(32), f(36)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(p: [f64; 2], v: [f64; 2], t0: f64, t1: f64) -> TpBox {
        TpBox::moving_point(p, v, Interval::new(t0, t1))
    }

    #[test]
    fn moving_point_positions() {
        let b = mp([1.0, 2.0], [1.0, -0.5], 0.0, 10.0);
        assert_eq!(b.rect_at(0.0), Rect::from_point([1.0, 2.0]));
        assert_eq!(b.rect_at(4.0), Rect::from_point([5.0, 0.0]));
        // Anchored at t0 ≠ 0 too.
        let b = mp([1.0, 2.0], [1.0, 0.0], 5.0, 10.0);
        assert_eq!(b.rect_at(5.0), Rect::from_point([1.0, 2.0]));
        assert_eq!(b.rect_at(7.0), Rect::from_point([3.0, 2.0]));
    }

    #[test]
    fn cover_bounds_both_motions_forever() {
        let a = mp([0.0, 0.0], [1.0, 0.0], 0.0, 10.0);
        let b = mp([5.0, 1.0], [-1.0, 0.5], 0.0, 10.0);
        let c = Key::cover(&a, &b);
        for k in 0..=20 {
            let t = k as f64 * 0.5;
            let r = c.rect_at(t);
            assert!(r.contains_point(&[t, 0.0]), "a at t={t}");
            assert!(r.contains_point(&[5.0 - t, 1.0 + 0.5 * t]), "b at t={t}");
        }
        assert!(c.contains(&a));
        assert!(c.contains(&b));
    }

    #[test]
    fn overlap_time_exact() {
        // Point moving right; stationary box at x ∈ [5, 6].
        let p = mp([0.0, 0.5], [1.0, 0.0], 0.0, 10.0);
        let q = TpBox::stationary(
            &Rect::from_corners([5.0, 0.0], [6.0, 1.0]),
            Interval::new(0.0, 10.0),
        );
        assert_eq!(p.overlap_time(&q), Interval::new(5.0, 6.0));
        assert!(Key::overlaps(&p, &q));
        // Outside the active window: no overlap.
        let q_late = TpBox::stationary(
            &Rect::from_corners([5.0, 0.0], [6.0, 1.0]),
            Interval::new(7.0, 10.0),
        );
        assert!(p.overlap_time(&q_late).is_empty());
    }

    #[test]
    fn empty_active_rect_at_is_empty() {
        // A box whose edges are perfectly valid but whose active window
        // is empty bounds no instants: rect_at must be empty at any t,
        // not an inverted/infinite rectangle evaluated at a clamped ±∞.
        let mut b = mp([1.0, 2.0], [1.0, -0.5], 0.0, 10.0);
        b.active = Interval::EMPTY;
        for t in [-5.0, 0.0, 3.0, 1e9] {
            let r = b.rect_at(t);
            assert!(r.is_empty(), "rect_at({t}) = {r:?} must be empty");
        }
        // Inverted (lo > hi) active windows count as empty too.
        let mut inv = mp([1.0, 2.0], [1.0, -0.5], 0.0, 10.0);
        inv.active = Interval::new(5.0, 2.0);
        assert!(inv.active.is_empty());
        assert!(inv.rect_at(3.0).is_empty());
        assert_eq!(TpBox::EMPTY.rect_at(0.0), Rect::EMPTY);
    }

    #[test]
    fn empty_active_overlap_time_is_canonically_empty() {
        let a = mp([0.0, 0.5], [1.0, 0.0], 0.0, 10.0);
        let mut dead = a;
        dead.active = Interval::EMPTY;
        // Both orders, and the canonical constant — not merely "some
        // empty-ish interval" that downstream code might mishandle.
        assert_eq!(dead.overlap_time(&a), Interval::EMPTY);
        assert_eq!(a.overlap_time(&dead), Interval::EMPTY);
        assert!(!Key::overlaps(&a, &dead));
        assert!(!Key::overlaps(&dead, &a));
        // Disjoint actives intersect to an inverted interval; the result
        // must still be the canonical EMPTY.
        let late = mp([0.0, 0.5], [1.0, 0.0], 20.0, 30.0);
        let ov = a.overlap_time(&late);
        assert_eq!(ov, Interval::EMPTY);
        assert_eq!(ov.lo, Interval::EMPTY.lo);
        assert_eq!(ov.hi, Interval::EMPTY.hi);
        // And a non-overlap *within* a live window is canonical as well.
        let never = mp([5.0, 50.0], [0.0, 0.0], 0.0, 10.0);
        let ov = a.overlap_time(&never);
        assert_eq!(ov.lo, Interval::EMPTY.lo);
        assert_eq!(ov.hi, Interval::EMPTY.hi);
    }

    #[test]
    fn chasing_points_never_meet() {
        let a = mp([0.0, 0.0], [1.0, 0.0], 0.0, 100.0);
        let b = mp([5.0, 0.0], [1.0, 0.0], 0.0, 100.0);
        assert!(a.overlap_time(&b).is_empty());
        // Slower leader is caught at t = 10.
        let slow = mp([5.0, 0.0], [0.5, 0.0], 0.0, 100.0);
        assert_eq!(a.overlap_time(&slow).lo, 10.0);
    }

    #[test]
    fn integrated_metrics() {
        // Two diverging points: box width grows as 2t along x, 0 along y.
        let a = mp([0.0, 0.0], [-1.0, 0.0], 0.0, 2.0);
        let b = mp([0.0, 0.0], [1.0, 0.0], 0.0, 2.0);
        let c = Key::cover(&a, &b);
        // Area(t) = (2t)·0 = 0 (degenerate in y) ⇒ integral 0.
        assert_eq!(c.integrated_area(), 0.0);
        // Margin(t) = 2t ⇒ ∫₀² 2t dt = 4.
        assert!((c.integrated_margin() - 4.0).abs() < 1e-9);
        assert_eq!(Key::margin(&c), c.integrated_margin());
    }

    #[test]
    fn integrated_area_quadratic_exact() {
        // Diverging in both axes: area(t) = (2t)(4t) = 8t², ∫₀³ = 72.
        let a = mp([0.0, 0.0], [-1.0, -2.0], 0.0, 3.0);
        let b = mp([0.0, 0.0], [1.0, 2.0], 0.0, 3.0);
        let c = Key::cover(&a, &b);
        assert!((c.integrated_area() - 72.0).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_conservative() {
        let a = mp([0.1, 0.2], [0.3, -0.7], 1.0, 9.0);
        let b = mp([3.0, 4.0], [-0.1, 0.2], 2.0, 8.0);
        let c = Key::cover(&a, &b);
        let mut buf = Vec::new();
        c.encode(&mut buf);
        assert_eq!(buf.len(), <TpBox as Key>::ENCODED_LEN);
        let d = TpBox::decode(&buf);
        // The decoded box must still contain both motions.
        assert!(d.contains(&a.intersect(&d)));
        for k in 0..=16 {
            let t = 1.0 + k as f64 * 0.5;
            if a.active.contains(t) {
                let p = a.rect_at(t).center();
                assert!(d.rect_at(t).inflate(1e-4).contains_point(&p), "t={t}");
            }
        }
    }

    #[test]
    fn empty_box_behaviour() {
        assert!(Key::is_empty(&TpBox::EMPTY));
        let a = mp([0.0, 0.0], [1.0, 1.0], 0.0, 5.0);
        assert_eq!(Key::cover(&TpBox::EMPTY, &a), a);
        assert!(!Key::overlaps(&TpBox::EMPTY, &a));
        assert_eq!(TpBox::EMPTY.integrated_area(), 0.0);
    }

    #[test]
    fn str_axis_accessors() {
        let a = mp([1.0, 2.0], [1.0, 0.0], 0.0, 4.0);
        // x spans [1, 5] over the active window; y fixed at 2; time [0,4].
        assert_eq!(Key::axis_lo(&a, 0), 1.0);
        assert_eq!(Key::axis_hi(&a, 0), 5.0);
        assert_eq!(Key::axis_lo(&a, 1), 2.0);
        assert_eq!(Key::axis_hi(&a, 1), 2.0);
        assert_eq!(Key::axis_lo(&a, 2), 0.0);
        assert_eq!(Key::axis_hi(&a, 2), 4.0);
    }
}
