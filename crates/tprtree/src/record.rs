//! Leaf records of the TPR-tree: moving points.

use crate::tpbox::TpBox;
use rtree::stbox_key::quantize;
use rtree::Record;
use stkit::{Interval, Scalar};

/// A moving point: the *current motion* of one object — position `p` at
/// `active.lo`, constant velocity `v`, expected to be replaced by the
/// object's next update at or before `active.hi`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TprRecord {
    /// Position at `active.lo`.
    pub p: [Scalar; 2],
    /// Velocity.
    pub v: [Scalar; 2],
    /// Time window this motion is assumed valid.
    pub active: Interval,
    /// Object id.
    pub oid: u32,
    /// Update sequence.
    pub seq: u32,
}

impl TprRecord {
    /// Build a record, quantizing to page precision so encoding
    /// round-trips exactly.
    pub fn new(oid: u32, seq: u32, active: Interval, p: [Scalar; 2], v: [Scalar; 2]) -> Self {
        TprRecord {
            p: p.map(quantize),
            v: v.map(quantize),
            active: Interval::new(quantize(active.lo), quantize(active.hi)),
            oid,
            seq,
        }
    }

    /// Position at time `t` (clamped into the active window).
    pub fn position_at(&self, t: Scalar) -> [Scalar; 2] {
        let t = self.active.clamp(t);
        [
            self.p[0] + self.v[0] * (t - self.active.lo),
            self.p[1] + self.v[1] * (t - self.active.lo),
        ]
    }

    /// The motion as a time-parameterized (degenerate) box.
    pub fn tpbox(&self) -> TpBox {
        TpBox::moving_point(self.p, self.v, self.active)
    }
}

impl Record for TprRecord {
    type Key = TpBox;

    // p (2×f32) ‖ v (2×f32) ‖ active (2×f32) ‖ oid ‖ seq.
    const ENCODED_LEN: usize = 32;

    fn key(&self) -> TpBox {
        self.tpbox()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for c in self.p.iter().chain(&self.v) {
            buf.extend_from_slice(&(*c as f32).to_le_bytes());
        }
        buf.extend_from_slice(&(self.active.lo as f32).to_le_bytes());
        buf.extend_from_slice(&(self.active.hi as f32).to_le_bytes());
        buf.extend_from_slice(&self.oid.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let f = |o: usize| f32::from_le_bytes(buf[o..o + 4].try_into().unwrap()) as f64;
        TprRecord {
            p: [f(0), f(4)],
            v: [f(8), f(12)],
            active: Interval::new(f(16), f(20)),
            oid: u32::from_le_bytes(buf[24..28].try_into().unwrap()),
            seq: u32::from_le_bytes(buf[28..32].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact() {
        let r = TprRecord::new(9, 2, Interval::new(1.25, 7.5), [0.1, 0.2], [-0.3, 0.4]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), TprRecord::ENCODED_LEN);
        assert_eq!(TprRecord::decode(&buf), r);
    }

    #[test]
    fn fanout_on_4k_pages() {
        use rtree::Key;
        assert_eq!((4096 - 32) / TprRecord::ENCODED_LEN, 127);
        assert_eq!((4096 - 32) / (<TpBox as Key>::ENCODED_LEN + 4), 92);
    }

    #[test]
    fn position_clamps_to_active() {
        let r = TprRecord::new(1, 0, Interval::new(2.0, 4.0), [0.0, 0.0], [1.0, 2.0]);
        assert_eq!(r.position_at(2.0), [0.0, 0.0]);
        assert_eq!(r.position_at(3.0), [1.0, 2.0]);
        assert_eq!(r.position_at(100.0), [2.0, 4.0]);
    }

    #[test]
    fn key_covers_whole_motion() {
        let r = TprRecord::new(1, 0, Interval::new(0.0, 5.0), [1.0, 1.0], [2.0, -1.0]);
        let k = r.key();
        for t in [0.0, 2.5, 5.0] {
            assert!(k.rect_at(t).contains_point(&r.position_at(t)));
        }
    }
}
