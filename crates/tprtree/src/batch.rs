//! SoA batched overlap-time kernel for time-parameterized boxes.
//!
//! Mirrors [`crate::engine::overlap_window_tpbox`] over a whole node
//! page at once: the entries' edge positions and velocities are staged
//! in struct-of-arrays layout and the two per-axis inequalities
//! (`window.hi_i(t) ≥ box.lo_i(t)`, `window.lo_i(t) ≤ box.hi_i(t)`)
//! are evaluated with branch-free per-lane selects — both sides of each
//! constraint vary per entry, so unlike the static-box kernel the case
//! selection cannot hoist, but it still compiles to selects rather than
//! control flow. Same bit-identity contract as `stkit::batch`: non-NaN
//! operands give `to_bits`-identical non-empty results; empty results
//! may differ in representation, which `Interval`'s `PartialEq`
//! (all-empties-equal) absorbs.

use crate::tpbox::TpBox;
use stkit::batch::{lane_ge0, lane_le0};
use stkit::{Interval, MovingWindow};

/// SoA staging area for [`TpBox`] entries of one node page.
#[derive(Debug, Default)]
pub struct TpBoxBatch {
    act_lo: Vec<f64>,
    act_hi: Vec<f64>,
    lo0: [Vec<f64>; 2],
    v_lo: [Vec<f64>; 2],
    hi0: [Vec<f64>; 2],
    v_hi: [Vec<f64>; 2],
    out_lo: Vec<f64>,
    out_hi: Vec<f64>,
}

impl TpBoxBatch {
    /// Fresh, empty batch (reusable across node visits).
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove all staged boxes, keeping capacity.
    pub fn clear(&mut self) {
        self.act_lo.clear();
        self.act_hi.clear();
        for i in 0..2 {
            self.lo0[i].clear();
            self.v_lo[i].clear();
            self.hi0[i].clear();
            self.v_hi[i].clear();
        }
    }

    /// Number of staged boxes.
    pub fn len(&self) -> usize {
        self.act_lo.len()
    }

    /// True iff no boxes are staged.
    pub fn is_empty(&self) -> bool {
        self.act_lo.is_empty()
    }

    /// Stage one time-parameterized box.
    pub fn push(&mut self, b: &TpBox) {
        self.act_lo.push(b.active.lo);
        self.act_hi.push(b.active.hi);
        for i in 0..2 {
            self.lo0[i].push(b.axes[i].lo0);
            self.v_lo[i].push(b.axes[i].v_lo);
            self.hi0[i].push(b.axes[i].hi0);
            self.v_hi[i].push(b.axes[i].v_hi);
        }
    }

    /// Evaluate `overlap_window_tpbox(w, box_j)` for every staged entry
    /// `j`; read results back with [`Self::result`].
    pub fn solve(&mut self, w: &MovingWindow<2>) {
        let n = self.len();
        self.out_lo.clear();
        self.out_hi.clear();
        // t = span ∩ active, lane-wise.
        self.out_lo.extend(self.act_lo.iter().map(|&a| w.span.lo.max(a)));
        self.out_hi.extend(self.act_hi.iter().map(|&a| w.span.hi.min(a)));
        for i in 0..2 {
            let (wl, wh) = (w.lo[i], w.hi[i]);
            let (lo0, v_lo) = (&self.lo0[i], &self.v_lo[i]);
            let (hi0, v_hi) = (&self.hi0[i], &self.v_hi[i]);
            for j in 0..n {
                // w.hi_i(t) ≥ box.lo_i(t): (w.hi − box.lo) solves ≥ 0.
                let (lo1, hi1) = lane_ge0(
                    wh.a - lo0[j],
                    wh.b - v_lo[j],
                    self.out_lo[j],
                    self.out_hi[j],
                );
                // w.lo_i(t) ≤ box.hi_i(t): (w.lo − box.hi) solves ≤ 0.
                let (lo2, hi2) = lane_le0(wl.a - hi0[j], wl.b - v_hi[j], lo1, hi1);
                self.out_lo[j] = lo2;
                self.out_hi[j] = hi2;
            }
        }
    }

    /// Overlap-time of entry `j` from the last [`Self::solve`] call.
    #[inline]
    pub fn result(&self, j: usize) -> Interval {
        Interval::new(self.out_lo[j], self.out_hi[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::overlap_window_tpbox;
    use stkit::Rect;

    #[test]
    fn batch_matches_scalar_overlap_window_tpbox() {
        let windows = [
            MovingWindow::between(
                Interval::new(0.0, 10.0),
                &Rect::from_corners([0.0, 0.0], [2.0, 2.0]),
                &Rect::from_corners([10.0, 0.0], [12.0, 2.0]),
            ),
            MovingWindow::stationary(
                Interval::new(2.0, 8.0),
                &Rect::from_corners([4.0, 0.0], [6.0, 1.0]),
            ),
        ];
        let boxes = [
            TpBox::moving_point([0.0, 0.5], [1.0, 0.0], Interval::new(0.0, 10.0)),
            TpBox::moving_point([5.0, 0.5], [1.0, 0.0], Interval::new(0.0, 10.0)),
            TpBox::moving_point([5.0, 0.5], [-0.5, 0.1], Interval::new(3.0, 7.0)),
            TpBox::stationary(
                &Rect::from_corners([5.0, 0.0], [6.0, 1.0]),
                Interval::new(7.0, 10.0),
            ),
            TpBox::EMPTY,
        ];
        let mut batch = TpBoxBatch::new();
        for b in &boxes {
            batch.push(b);
        }
        for (wi, w) in windows.iter().enumerate() {
            batch.solve(w);
            for (j, b) in boxes.iter().enumerate() {
                let scalar = overlap_window_tpbox(w, b);
                let batched = batch.result(j);
                assert_eq!(batched, scalar, "window {wi}, box {j}");
                if !scalar.is_empty() {
                    assert_eq!(batched.lo.to_bits(), scalar.lo.to_bits(), "w{wi} b{j} lo");
                    assert_eq!(batched.hi.to_bits(), scalar.hi.to_bits(), "w{wi} b{j} hi");
                }
            }
        }
    }
}
