//! Property tests pinning the SoA batched TpBox overlap kernel to the
//! scalar `overlap_window_tpbox`: interval-equal always, bit-identical
//! on non-empty results.

use proptest::prelude::*;
use stkit::{Interval, MovingWindow, Rect};
use tprtree::engine::overlap_window_tpbox;
use tprtree::{TpBox, TpBoxBatch};

fn iv() -> impl Strategy<Value = Interval> {
    (-40.0f64..40.0, 0.0f64..25.0).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn rect2() -> impl Strategy<Value = Rect<2>> {
    (iv(), iv()).prop_map(|(x, y)| Rect::new([x, y]))
}

fn window() -> impl Strategy<Value = MovingWindow<2>> {
    (iv(), rect2(), rect2(), any::<bool>()).prop_map(|(span, a, b, stationary)| {
        let span = if span.lo == span.hi {
            Interval::new(span.lo, span.lo + 1.0)
        } else {
            span
        };
        if stationary {
            MovingWindow::stationary(span, &a)
        } else {
            MovingWindow::between(span, &a, &b)
        }
    })
}

fn tpbox() -> impl Strategy<Value = TpBox> {
    prop_oneof![
        (
            (-40.0f64..40.0, -40.0f64..40.0),
            (-3.0f64..3.0, -3.0f64..3.0),
            iv(),
        )
            .prop_map(|(p, v, active)| TpBox::moving_point([p.0, p.1], [v.0, v.1], active)),
        (rect2(), iv()).prop_map(|(r, active)| TpBox::stationary(&r, active)),
        Just(TpBox::EMPTY),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn tpbox_batch_bit_identical_to_scalar(
        w in window(),
        boxes in proptest::collection::vec(tpbox(), 1..20),
    ) {
        let mut batch = TpBoxBatch::new();
        for b in &boxes {
            batch.push(b);
        }
        batch.solve(&w);
        for (j, b) in boxes.iter().enumerate() {
            let scalar = overlap_window_tpbox(&w, b);
            let batched = batch.result(j);
            prop_assert_eq!(batched, scalar, "box {}", j);
            if !scalar.is_empty() {
                prop_assert_eq!(batched.lo.to_bits(), scalar.lo.to_bits(), "box {} lo", j);
                prop_assert_eq!(batched.hi.to_bits(), scalar.hi.to_bits(), "box {} hi", j);
            }
        }
    }
}
