//! Property tests for the TPR-tree: key conservativeness under cover and
//! page encoding, and dynamic-query agreement with brute force.

use mobiquery::Trajectory;
use proptest::prelude::*;
use rtree::{Key, RTree, RTreeConfig, Record};
use std::collections::HashSet;
use storage::Pager;
use stkit::{Interval, Rect};
use tprtree::{engine::overlap_trajectory_tpbox, TpBox, TprDynamicQuery, TprRecord};

fn rec() -> impl Strategy<Value = TprRecord> {
    (
        (0.0f64..100.0, 0.0f64..100.0),
        (-2.0f64..2.0, -2.0f64..2.0),
        0.0f64..20.0,
        1.0f64..20.0,
    )
        .prop_map(|(p, v, t0, dur)| {
            TprRecord::new(0, 0, Interval::new(t0, t0 + dur), [p.0, p.1], [v.0, v.1])
        })
}

fn recs(n: usize) -> impl Strategy<Value = Vec<TprRecord>> {
    proptest::collection::vec(rec(), 5..n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, r)| TprRecord { oid: i as u32, ..r })
            .collect()
    })
}

fn traj() -> impl Strategy<Value = Trajectory<2>> {
    (
        (10.0f64..90.0, 10.0f64..90.0),
        (-3.0f64..3.0, -3.0f64..3.0),
        2.0f64..12.0,
        0.5f64..15.0,
    )
        .prop_map(|(c, v, side, dur)| {
            Trajectory::linear(
                Rect::from_corners([c.0, c.1], [c.0 + side, c.1 + side]),
                [v.0, v.1],
                Interval::new(2.0, 2.0 + dur),
                3,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cover_contains_motions_at_all_times(a in rec(), b in rec()) {
        let c = Key::cover(&a.key(), &b.key());
        for r in [&a, &b] {
            for k in 0..=10 {
                let t = r.active.lo + r.active.length() * k as f64 / 10.0;
                let p = r.position_at(t);
                prop_assert!(
                    c.rect_at(t).inflate(1e-9).contains_point(&p),
                    "cover must contain {p:?} at t={t}"
                );
            }
        }
        // `contains` is strict (no epsilon): it may report false for a
        // box it covers up to rounding — safe for pruning. Check the
        // one-sided guarantee with an explicit tolerance instead.
        for r in [&a, &b] {
            for t in [r.active.lo, r.active.hi] {
                for axis in 0..2 {
                    let lo = c.axes[axis].lo_form().eval(t);
                    let hi = c.axes[axis].hi_form().eval(t);
                    let p = r.position_at(t)[axis];
                    prop_assert!(lo <= p + 1e-6 && p - 1e-6 <= hi,
                        "axis {axis} t={t}: [{lo}, {hi}] vs {p}");
                }
            }
        }
    }

    #[test]
    fn encoding_is_conservative(a in rec(), b in rec()) {
        let c = Key::cover(&a.key(), &b.key());
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let d = TpBox::decode(&buf);
        for r in [&a, &b] {
            for k in 0..=10 {
                let t = r.active.lo + r.active.length() * k as f64 / 10.0;
                let p = r.position_at(t);
                prop_assert!(
                    d.rect_at(t).inflate(1e-3).contains_point(&p),
                    "decoded cover must contain {p:?} at t={t}"
                );
            }
        }
    }

    #[test]
    fn overlap_time_matches_sampling(r in rec(), q in traj()) {
        let ts = overlap_trajectory_tpbox(&q, &r.tpbox());
        let span = q.span().intersect(&r.active);
        if span.is_empty() { return Ok(()); }
        for k in 0..=24 {
            let t = span.lo + span.length() * k as f64 / 24.0;
            let p = r.position_at(t);
            let win = q.window_at(t);
            if ts.contains(t) {
                prop_assert!(win.inflate(1e-6).contains_point(&p), "t={t}");
            } else {
                let shrunk = win.inflate(-1e-6);
                if !shrunk.is_empty() && shrunk.contains_point(&p) {
                    prop_assert!(ts.contains(t), "t={t} at {p:?} missed");
                }
            }
        }
    }

    #[test]
    fn dynamic_query_equals_brute_force(rs in recs(200), q in traj()) {
        let mut tree: RTree<TprRecord, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
        for r in &rs {
            tree.insert(*r, r.active.lo);
        }
        tree.validate().unwrap();
        let expected: HashSet<u32> = rs
            .iter()
            .filter(|r| !overlap_trajectory_tpbox(&q, &r.tpbox()).is_empty())
            .map(|r| r.oid)
            .collect();
        let span = q.span();
        let mut engine = TprDynamicQuery::start(&tree, q);
        let got: HashSet<u32> = engine
            .drain_window(&tree, span.lo, span.hi)
            .iter()
            .map(|r| r.record.oid)
            .collect();
        prop_assert_eq!(got, expected);
    }
}

/// Historical proptest shrink (recorded in `prop_tpr.proptest-regressions`),
/// promoted to a deterministic case since the offline harness does not
/// replay regression files: a stationary record and a slow mover whose
/// active intervals are ~12 time units apart stress the cover's
/// extrapolation outside both validity windows.
#[test]
fn cover_regression_disjoint_active_intervals() {
    let a = TprRecord::new(
        0,
        0,
        Interval::new(4.136654853820801, 5.136654853820801),
        [0.0, 0.0],
        [0.0, 0.0],
    );
    let b = TprRecord::new(
        0,
        0,
        Interval::new(16.95756721496582, 17.95756721496582),
        [72.91514587402344, 0.0],
        [0.11966397613286972, 0.0],
    );
    let c = Key::cover(&a.key(), &b.key());
    for r in [&a, &b] {
        for k in 0..=10 {
            let t = r.active.lo + r.active.length() * k as f64 / 10.0;
            let p = r.position_at(t);
            assert!(
                c.rect_at(t).inflate(1e-9).contains_point(&p),
                "cover must contain {p:?} at t={t}"
            );
            for (axis, &x) in p.iter().enumerate() {
                let lo = c.axes[axis].lo_form().eval(t);
                let hi = c.axes[axis].hi_form().eval(t);
                assert!(
                    lo <= x + 1e-6 && x - 1e-6 <= hi,
                    "axis {axis} t={t}: [{lo}, {hi}] vs {x}"
                );
            }
        }
    }
}
