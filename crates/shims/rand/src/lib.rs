//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the `rand` 0.8 API subset the workspace uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`SeedableRng`] with the
//! same PCG-based `seed_from_u64` seed expansion as the real crate, so
//! seeded generators stay deterministic across the whole workspace.

/// Low-level uniform bit source. Implemented by concrete generators
/// (e.g. `rand_chacha::ChaCha8Rng`).
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from the whole value domain via
/// [`Rng::gen`] (the real crate's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1) — the real crate's layout.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Map a uniform `u64` into `[0, span)` by widening multiply — unbiased
/// enough for simulation workloads, branch-free.
fn widening_mod(x: u64, span: u128) -> u128 {
    (x as u128 * span) >> 64
}

/// High-level sampling interface; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn from the type's whole domain (`rng.gen::<f64>()`
    /// gives a uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the real crate's PCG32-based
    /// expansion, so seeded streams match `rand` 0.8 exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: uniform enough for the range tests below.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut x = self.0;
            x ^= x >> 32;
            x = x.wrapping_mul(0xD6E8FEB86659FD93);
            x ^= x >> 32;
            x
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut r = Counter(1);
        for _ in 0..10_000 {
            let v = r.gen_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&v));
            let w = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_inside_and_cover() {
        let mut r = Counter(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut r = Counter(3);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unsized_rng_callable() {
        // `R: Rng + ?Sized` callers (motion::rng) must keep compiling.
        fn sample_dyn(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut r = Counter(4);
        let v = sample_dyn(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
