//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! reimplements the API subset the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`, implemented for numeric
//!   ranges, tuples (arity ≤ 8), [`Just`], [`collection::vec`] and
//!   [`any`].
//! * The [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from the real crate, deliberate for this repo:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering and the case's seed, which is enough to reproduce
//!   (generation is fully deterministic: the stream is keyed on the test
//!   function's name, so a failure reproduces on every run).
//! * **No persistence.** `*.proptest-regressions` files are not read;
//!   regressions worth keeping should be promoted to explicit `#[test]`
//!   cases.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A stream keyed on an arbitrary string (the test function name).
    pub fn keyed(key: &str) -> TestRng {
        // FNV-1a over the key gives a stable per-test stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// The raw stream state, reported on failure for reproduction.
    pub fn state(&self) -> u64 {
        self.0
    }
}

/// Failure raised by `prop_assert!`-style macros inside a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Construct from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Harness configuration consumed by the [`proptest!`] macro.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, the element type of [`Union`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!` desugars to this).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty int strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty int strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types generatable by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy over a type's whole domain: `any::<u8>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Uniform choice among strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // `match` instead of `if !cond` keeps clippy's
        // `neg_cmp_op_on_partial_ord` quiet for float comparisons.
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
            }
        }
    };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::TestRng::keyed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = rng.state();
                let values = $crate::Strategy::generate(&strategies, &mut rng);
                let rendered = format!("{:?}", &values);
                // Zero-arg closure so the body's `return Ok(())` works and
                // the `let` destructure sees a fully inferred tuple type.
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        let ($($pat,)+) = values;
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{} (stream state {:#x})\n{}\ninputs: {}",
                        stringify!($name), case + 1, config.cases, seed, e, rendered
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::keyed("bounds");
        let s = (0.0f64..10.0, 1usize..4);
        for _ in 0..1000 {
            let (x, n) = s.generate(&mut rng);
            assert!((0.0..10.0).contains(&x));
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::keyed("vec");
        let s = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::keyed("oneof");
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn generation_is_deterministic_per_key() {
        let s = crate::collection::vec(0.0f64..1.0, 3..9);
        let mut a = crate::TestRng::keyed("same");
        let mut b = crate::TestRng::keyed("same");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    // The macro itself, exercised end to end (including an early Ok
    // return and a formatted prop_assert).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_roundtrip(x in 0.0f64..5.0, (a, b) in (0u32..10, 0u32..10), v in crate::collection::vec(any::<u8>(), 0..4)) {
            if v.is_empty() { return Ok(()); }
            prop_assert!(x < 5.0, "x out of range: {x}");
            prop_assert_eq!(a + b, b + a);
        }
    }
}
