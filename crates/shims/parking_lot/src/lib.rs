//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the subset of the `parking_lot` 0.12 API the workspace
//! uses — [`Mutex`], [`RwLock`] and [`Condvar`] — on top of `std::sync`
//! primitives. The semantic difference that matters to callers is
//! preserved: locking never returns a poison error (a panicked holder
//! just releases the lock), so `.lock()` / `.read()` / `.write()` return
//! guards directly.

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during condvar wait")
    }
}

/// A readers–writer lock whose accessors return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-access guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Block until exclusive access is acquired. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable paired with [`Mutex`]; `wait` reborrows the guard
/// in place like `parking_lot`'s.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Atomically release the guard's lock and wait for a notification
    /// or the timeout, whichever comes first. Matches `parking_lot`'s
    /// `wait_for`: the returned [`WaitTimeoutResult`] says whether the
    /// wait ended by timeout (spurious wakeups still return `false`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during condvar wait");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] ended because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True iff the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path: nobody notifies.
        {
            let (m, cv) = &*pair;
            let mut done = m.lock();
            let res = cv.wait_for(&mut done, std::time::Duration::from_millis(10));
            assert!(res.timed_out());
            assert!(!*done, "guard reborrowed after timed wait");
        }
        // Notification path.
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let _ = cv.wait_for(&mut done, std::time::Duration::from_secs(5));
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is simply available again.
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }
}
