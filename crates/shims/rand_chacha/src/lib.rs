//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`]: a genuine ChaCha stream cipher with 8 rounds
//! (D. J. Bernstein's construction), exposed through the vendored `rand`
//! shim's [`RngCore`]/[`SeedableRng`] traits. The workspace only relies
//! on *determinism under a seed*, which the real cipher gives us with
//! high-quality equidistribution for free.

use rand::{RngCore, SeedableRng};

/// One 64-byte ChaCha block = 16 output words.
const BLOCK_WORDS: usize = 16;

fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha generator with 8 double-rounds halved (8 rounds total),
/// matching `rand_chacha`'s `ChaCha8Rng` construction.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, key, block counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unconsumed word in `buf` (`BLOCK_WORDS` = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, w) in working.iter().enumerate() {
            self.buf[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn ietf_chacha20_style_state_layout() {
        // The all-zero seed produces the well-known ChaCha8 keystream
        // head; spot-check determinism and non-triviality.
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let mut b = ChaCha8Rng::from_seed([0; 32]);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = ChaCha8Rng::seed_from_u64(42);
        let n = 100_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn block_boundary_is_seamless() {
        // Consume an odd number of words so next_u64 straddles a refill.
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..15 {
            r.next_u32();
        }
        let v = r.next_u64();
        let mut s = ChaCha8Rng::seed_from_u64(9);
        let mut words: Vec<u32> = (0..18).map(|_| s.next_u32()).collect();
        let expect = words.remove(15) as u64 | ((words.remove(15) as u64) << 32);
        assert_eq!(v, expect);
    }
}
