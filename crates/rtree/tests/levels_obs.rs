//! Per-level counter reconciliation: every simulated disk access the tree
//! performs must show up once in [`rtree::LevelCounters`], agree with the
//! buffer pool's hit+miss totals, and (when tracing is on) appear as a
//! `NodeVisit` event in the thread's trace ring.

use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use stkit::{Interval, Rect, StBox};
use storage::{BufferPool, Pager};

type R = NsiSegmentRecord<2>;

fn record(i: u32) -> R {
    let x = (i % 40) as f64;
    let y = (i / 40) as f64;
    R::new(i, 0, Interval::new(0.0, 1.0), [x, y], [x + 0.4, y + 0.4])
}

#[test]
fn level_reads_reconcile_with_pool_hits_plus_misses() {
    let pool = BufferPool::new(Pager::new(), 32);
    let mut tree = RTree::new(pool, RTreeConfig::default());
    for i in 0..2000u32 {
        tree.insert(record(i), i as f64);
    }
    assert!(tree.height() >= 2, "need a multi-level tree");

    let levels_before = tree.level_counters().snapshot();
    let cache_before = tree.store().cache_stats();

    let q = StBox::new(
        Rect::from_corners([3.0, 3.0], [21.0, 21.0]),
        Rect::new([Interval::new(0.0, 1.0)]),
    );
    let (hits, stats) = tree.range_collect(&q, |_| true);
    assert!(!hits.is_empty());

    let delta = tree.level_counters().snapshot() - levels_before;
    let cache = tree.store().cache_stats();
    let pool_accesses = (cache.hits - cache_before.hits) + (cache.misses - cache_before.misses);

    // Every node the search visited is one pool access, and vice versa:
    // nothing else touched the store between the snapshots.
    assert_eq!(delta.total_reads(), stats.nodes_visited);
    assert_eq!(delta.total_reads(), pool_accesses);
    assert_eq!(delta.total_writes(), 0);

    // The search read the root exactly once, and the root is the only
    // node at the top level.
    assert_eq!(delta.reads[(tree.height() - 1) as usize], 1);
    assert!(delta.leaf_reads() > 0);
}

#[test]
fn node_visits_trace_into_the_thread_ring() {
    // Dedicated thread: the trace ring is thread-local and the enable
    // flag is global, so keep this test's view isolated.
    std::thread::spawn(|| {
        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for i in 0..600u32 {
            tree.insert(record(i), i as f64);
        }
        obs::take_thread_trace(); // drop build-time events

        let q = StBox::new(
            Rect::from_corners([0.0, 0.0], [10.0, 10.0]),
            Rect::new([Interval::new(0.0, 1.0)]),
        );
        let before = tree.level_counters().snapshot();
        tree.range_collect(&q, |_| true);
        let delta = tree.level_counters().snapshot() - before;

        let events = obs::take_thread_trace();
        let visits = events
            .iter()
            .filter(|e| matches!(e, obs::TraceEvent::NodeVisit { .. }))
            .count() as u64;
        // The ring holds 1024 events; this search visits far fewer, so
        // the trace must be a complete record of the counter delta.
        assert!(visits <= 1024);
        assert_eq!(visits, delta.total_reads());
        assert!(events.iter().any(|e| matches!(
            e,
            obs::TraceEvent::NodeVisit { level, .. } if *level > 0
        )));
    })
    .join()
    .unwrap();
}
