//! Property-based tests for the R-tree: structural invariants after
//! arbitrary build sequences, search equivalence with brute force, and
//! page-encoding conservatism.

use proptest::prelude::*;
use rtree::bulk::bulk_load;
use rtree::{Key, NsiSegmentRecord, RTree, RTreeConfig, Record, SplitPolicy};
use storage::Pager;
use stkit::{Interval, Rect, StBox};

type R = NsiSegmentRecord<2>;

#[derive(Clone, Debug)]
struct RawSeg {
    t0: f64,
    dur: f64,
    a: [f64; 2],
    b: [f64; 2],
}

fn raw_seg() -> impl Strategy<Value = RawSeg> {
    (
        0.0f64..100.0,
        0.05f64..5.0,
        (-100.0f64..100.0, -100.0f64..100.0),
        (-100.0f64..100.0, -100.0f64..100.0),
    )
        .prop_map(|(t0, dur, a, b)| RawSeg {
            t0,
            dur,
            a: [a.0, a.1],
            b: [b.0, b.1],
        })
}

fn records(max: usize) -> impl Strategy<Value = Vec<R>> {
    proptest::collection::vec(raw_seg(), 1..max).prop_map(|raws| {
        raws.iter()
            .enumerate()
            .map(|(i, r)| {
                R::new(
                    i as u32,
                    0,
                    Interval::new(r.t0, r.t0 + r.dur),
                    r.a,
                    r.b,
                )
            })
            .collect()
    })
}

fn query_key() -> impl Strategy<Value = StBox<2, 1>> {
    (
        -100.0f64..100.0,
        0.0f64..80.0,
        -100.0f64..100.0,
        0.0f64..80.0,
        0.0f64..100.0,
        0.0f64..20.0,
    )
        .prop_map(|(x, w, y, h, t, dt)| {
            StBox::new(
                Rect::from_corners([x, y], [x + w, y + h]),
                Rect::new([Interval::new(t, t + dt)]),
            )
        })
}

fn brute<'a>(recs: &'a [R], q: &'a StBox<2, 1>) -> Vec<u32> {
    let mut v: Vec<u32> = recs
        .iter()
        .filter(|r| r.key().overlaps(q))
        .map(|r| r.oid)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inserted_tree_is_valid_and_complete(recs in records(400), q in query_key()) {
        let mut tree: RTree<R, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
        for (i, r) in recs.iter().enumerate() {
            tree.insert(*r, i as f64);
        }
        let inv = tree.validate().unwrap();
        prop_assert_eq!(inv.records as usize, recs.len());
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&recs, &q));
    }

    #[test]
    fn bulk_tree_is_valid_and_complete(recs in records(600), q in query_key()) {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs.clone());
        tree.validate().unwrap();
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&recs, &q));
    }

    #[test]
    fn spatial_bulk_tree_matches_brute_force(recs in records(600), q in query_key()) {
        let cfg = RTreeConfig { bulk_leading_axes: Some(2), ..RTreeConfig::default() };
        let tree = bulk_load(Pager::new(), cfg, recs.clone());
        tree.validate().unwrap();
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&recs, &q));
    }

    #[test]
    fn linear_split_tree_matches_brute_force(recs in records(300), q in query_key()) {
        let cfg = RTreeConfig { split_policy: SplitPolicy::Linear, ..RTreeConfig::default() };
        let mut tree: RTree<R, Pager> = RTree::new(Pager::new(), cfg);
        for (i, r) in recs.iter().enumerate() {
            tree.insert(*r, i as f64);
        }
        tree.validate().unwrap();
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&recs, &q));
    }

    #[test]
    fn rstar_split_tree_matches_brute_force(recs in records(300), q in query_key()) {
        let cfg = RTreeConfig { split_policy: SplitPolicy::RStar, ..RTreeConfig::default() };
        let mut tree: RTree<R, Pager> = RTree::new(Pager::new(), cfg);
        for (i, r) in recs.iter().enumerate() {
            tree.insert(*r, i as f64);
        }
        tree.validate().unwrap();
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&recs, &q));
    }

    #[test]
    fn mixed_bulk_then_insert_matches_brute_force(
        base in records(300),
        extra in records(100),
        q in query_key(),
    ) {
        // Re-id the extras so oids stay unique.
        let extra: Vec<R> = extra
            .iter()
            .enumerate()
            .map(|(i, r)| R { oid: 10_000 + i as u32, ..*r })
            .collect();
        let mut tree = bulk_load(Pager::new(), RTreeConfig::default(), base.clone());
        for (i, r) in extra.iter().enumerate() {
            tree.insert(*r, i as f64);
        }
        tree.validate().unwrap();
        let mut all = base;
        all.extend_from_slice(&extra);
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&all, &q));
    }

    #[test]
    fn key_encoding_is_conservative(
        x0 in -1.0e6f64..1.0e6, w in 0.0f64..1.0e3,
        y0 in -1.0e6f64..1.0e6, h in 0.0f64..1.0e3,
        t in 0.0f64..1.0e6, dt in 0.0f64..1.0e3,
    ) {
        let k: StBox<2, 1> = StBox::new(
            Rect::from_corners([x0, y0], [x0 + w, y0 + h]),
            Rect::new([Interval::new(t, t + dt)]),
        );
        let mut buf = Vec::new();
        k.encode(&mut buf);
        let d = <StBox<2, 1> as Key>::decode(&buf);
        prop_assert!(d.contains(&k), "decoded {d:?} must contain {k:?}");
    }

    #[test]
    fn record_roundtrip_exact(raw in raw_seg()) {
        let r = R::new(7, 3, Interval::new(raw.t0, raw.t0 + raw.dur), raw.a, raw.b);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        prop_assert_eq!(R::decode(&buf), r);
    }

    #[test]
    fn delete_random_subset_matches_brute_force(
        recs in records(250),
        keep_mod in 2usize..5,
        q in query_key(),
    ) {
        let mut tree: RTree<R, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
        for (i, r) in recs.iter().enumerate() {
            tree.insert(*r, i as f64);
        }
        let mut remaining = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            if i % keep_mod == 0 {
                prop_assert!(tree.delete(r, 1_000.0 + i as f64), "delete {i}");
            } else {
                remaining.push(*r);
            }
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len() as usize, remaining.len());
        let (mut hits, _) = tree.range_collect(&q, |_| true);
        let mut got: Vec<u32> = hits.drain(..).map(|r| r.oid).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute(&remaining, &q));
    }

    #[test]
    fn insert_reports_cover_the_record(recs in records(300)) {
        // Every InsertReport's notification must cover the inserted record:
        // Record(r) trivially, Subtree's key must contain the record's key.
        let mut tree: RTree<R, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
        for (i, r) in recs.iter().enumerate() {
            let report = tree.insert(*r, i as f64);
            match &report.notify {
                rtree::Inserted::Record(rec) => prop_assert_eq!(rec, r),
                rtree::Inserted::Subtree { key, .. } => {
                    prop_assert!(key.contains(&r.key()),
                        "LCA key {key:?} must contain inserted {:?}", r.key());
                }
            }
        }
    }
}
