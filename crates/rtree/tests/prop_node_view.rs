//! Property tests: the zero-copy [`NodeView`] must be observationally
//! identical to the materializing [`Node::deserialize`] on every
//! round-tripped page — leaf and internal, empty through full capacity.

use proptest::prelude::*;
use rtree::{Node, NodeEntries, NodeRef, NodeView, NsiSegmentRecord, Record};
use storage::{PageId, PageRef};
use stkit::{Interval, StBox};

type R = NsiSegmentRecord<2>;
type K = StBox<2, 1>;
type N = Node<K, R>;

const PAGE: usize = 4096;
const LEAF_CAP: usize = 127;
const INTERNAL_CAP: usize = 145;

fn rec() -> impl Strategy<Value = R> {
    (
        0u32..1_000_000,
        0u32..64,
        0.0f64..1000.0,
        0.05f64..50.0,
        (-500.0f64..500.0, -500.0f64..500.0),
        (-500.0f64..500.0, -500.0f64..500.0),
    )
        .prop_map(|(oid, seq, t0, dur, a, b)| {
            R::new(oid, seq, Interval::new(t0, t0 + dur), [a.0, a.1], [b.0, b.1])
        })
}

fn leaf_node() -> impl Strategy<Value = N> {
    (proptest::collection::vec(rec(), 0..LEAF_CAP + 1), -10.0f64..10.0).prop_map(
        |(recs, ts)| Node {
            level: 0,
            timestamp: ts,
            entries: NodeEntries::Leaf(recs),
        },
    )
}

fn internal_node() -> impl Strategy<Value = N> {
    (
        proptest::collection::vec((rec(), 0u32..100_000), 0..INTERNAL_CAP + 1),
        1u32..8,
        -10.0f64..10.0,
    )
        .prop_map(|(raw, level, ts)| Node {
            level,
            timestamp: ts,
            entries: NodeEntries::Internal(
                raw.into_iter().map(|(r, p)| (r.key(), PageId(p))).collect(),
            ),
        })
}

/// All observations through the view must match the materialized node,
/// and materializing through the view must re-serialize bit-identically.
fn assert_view_equivalent(node: &N) {
    let page = node.serialize(PAGE);
    let decoded = N::deserialize(&page);
    let view: NodeView<'_, K, R> = NodeView::parse(&page);

    assert_eq!(view.is_leaf(), decoded.is_leaf());
    assert_eq!(view.level(), decoded.level);
    assert_eq!(view.timestamp().to_bits(), decoded.timestamp.to_bits());
    assert_eq!(view.len(), decoded.len());
    assert_eq!(view.is_empty(), decoded.is_empty());
    assert_eq!(view.bounding_key(), decoded.bounding_key());
    if view.is_leaf() {
        let lazy: Vec<R> = view.leaf_records().collect();
        assert_eq!(lazy.as_slice(), decoded.leaf_records());
    } else {
        let lazy: Vec<(K, PageId)> = view.internal_entries().collect();
        assert_eq!(lazy.as_slice(), decoded.internal_entries());
        for (i, e) in decoded.internal_entries().iter().enumerate() {
            assert_eq!(view.internal_entry(i), *e, "random access entry {i}");
        }
    }
    assert_eq!(view.to_node(), decoded);
    // Bit-identical: view → owned → page bytes reproduces the input page.
    assert_eq!(view.to_node().serialize(PAGE), page);

    // The owned handle must agree with the borrowed view.
    let nref: NodeRef<K, R> = NodeRef::parse(PageRef::from(page.clone()));
    assert_eq!(nref.to_node(), decoded);
    assert_eq!(nref.len(), decoded.len());
    assert_eq!(nref.bounding_key(), decoded.bounding_key());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leaf_view_matches_deserialize(node in leaf_node()) {
        assert_view_equivalent(&node);
    }

    #[test]
    fn internal_view_matches_deserialize(node in internal_node()) {
        assert_view_equivalent(&node);
    }
}

#[test]
fn empty_nodes_are_equivalent() {
    assert_view_equivalent(&N::empty_leaf());
    assert_view_equivalent(&N::internal(3, Vec::new()));
}

#[test]
fn full_capacity_nodes_are_equivalent() {
    let recs: Vec<R> = (0..LEAF_CAP as u32)
        .map(|i| {
            R::new(
                i,
                0,
                Interval::new(i as f64, i as f64 + 1.0),
                [i as f64, -(i as f64)],
                [i as f64 + 0.5, -(i as f64) + 0.5],
            )
        })
        .collect();
    let leaf = Node {
        level: 0,
        timestamp: 42.0,
        entries: NodeEntries::Leaf(recs.clone()),
    };
    assert_view_equivalent(&leaf);

    let entries: Vec<(K, PageId)> = (0..INTERNAL_CAP)
        .map(|i| (recs[i % LEAF_CAP].key(), PageId(i as u32)))
        .collect();
    let internal = Node {
        level: 1,
        timestamp: -1.5,
        entries: NodeEntries::Internal(entries),
    };
    assert_view_equivalent(&internal);
}
