//! Latch-free optimistic tree readers.
//!
//! [`TreeReader`] is a standalone read handle onto a tree: it shares the
//! tree's page store, [`TreeEpoch`](crate::epoch::TreeEpoch), and level
//! counters but holds no reference to the [`RTree`](crate::RTree) value
//! itself, so query sessions can descend while a writer (holding `&mut`
//! behind its own lock) mutates. Reads validate the epoch sequence after
//! every node visit and retry on conflict — the seqlock discipline
//! described in `epoch.rs`.
//!
//! Two consistency grades are offered through the [`TreeRead`] trait:
//!
//! * **Per-visit** ([`TreeReader::try_read_node`]): each delivered node
//!   is a self-consistent page read that no write section overlapped.
//!   This is what PDQ uses — its unit of work is one node expansion, and
//!   cross-visit staleness is already handled by the §4.1 notification
//!   protocol.
//! * **Snapshot** ([`TreeReadRetry::with_consistent`]): the whole closure
//!   runs against one tree version; any node read that observes a version
//!   change aborts the closure with [`StorageError::Conflict`] and the
//!   closure is retried from scratch against a fresh pin. NPDQ and kNN
//!   descents (one-shot whole-tree traversals) use this grade.
//!
//! [`RTree`] itself implements both traits trivially: holding `&RTree`
//! statically excludes writers, so no validation is needed and the
//! serial/locked paths execute byte-for-byte the same engine code.

use crate::epoch::TreeEpoch;
use crate::levels::LevelCounters;
use crate::node::NodeRef;
use crate::traits::Record;
use crate::tree::RTree;
use std::sync::Arc;
use storage::{PageId, PageStore, StorageError};

/// How many times one node visit re-reads after a version conflict
/// before surfacing [`StorageError::Conflict`] to the engine.
const VISIT_RETRIES: u32 = 8;

/// How many times a pinned snapshot closure is restarted on conflict
/// before the error propagates to the caller.
const SNAPSHOT_RETRIES: u32 = 32;

/// Read-only access to a tree, implemented by [`RTree`] (exclusive,
/// validation-free), [`TreeReader`] (optimistic per-visit validation) and
/// [`SnapshotReader`] (optimistic pinned-version validation). Engines
/// generic over this trait run identically on all three.
pub trait TreeRead<R: Record> {
    /// The root page of the tree version this view exposes.
    fn root_page(&self) -> PageId;

    /// Height of the tree version this view exposes (1 = leaf root).
    fn height(&self) -> u32;

    /// Number of records in the tree version this view exposes.
    fn len(&self) -> u64;

    /// True iff that version holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one node; on the optimistic implementations a delivered node
    /// is guaranteed not to have been overlapped by a write section.
    fn try_read_node(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError>;

    /// Infallible wrapper over [`Self::try_read_node`] for callers with
    /// no recovery story (panics surface at the top of the stack where
    /// the serving layer's `catch_unwind` contains them).
    fn read_node(&self, page: PageId) -> NodeRef<R::Key, R> {
        self.try_read_node(page)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }
}

/// The snapshot grade of [`TreeRead`]: run a closure against one
/// self-consistent tree version, retrying wholesale on conflicts.
pub trait TreeReadRetry<R: Record>: TreeRead<R> {
    /// Run `f` against a view on which *every* delivered read belongs to
    /// the same tree version. On [`RTree`] this is a plain call (shared
    /// access already excludes writers); on [`TreeReader`] the closure is
    /// re-run against a fresh pin whenever a read conflicts, up to an
    /// internal retry budget, after which the conflict propagates.
    fn with_consistent<T>(
        &self,
        f: impl FnMut(&dyn TreeRead<R>) -> Result<T, StorageError>,
    ) -> Result<T, StorageError>;
}

impl<R: Record, S: PageStore> TreeRead<R> for RTree<R, S> {
    fn root_page(&self) -> PageId {
        RTree::root_page(self)
    }
    fn height(&self) -> u32 {
        RTree::height(self)
    }
    fn len(&self) -> u64 {
        RTree::len(self)
    }
    fn try_read_node(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError> {
        RTree::try_read_node(self, page)
    }
    fn read_node(&self, page: PageId) -> NodeRef<R::Key, R> {
        RTree::read_node(self, page)
    }
}

impl<R: Record, S: PageStore> TreeReadRetry<R> for RTree<R, S> {
    fn with_consistent<T>(
        &self,
        mut f: impl FnMut(&dyn TreeRead<R>) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        f(self)
    }
}

/// A lock-free read handle sharing a tree's store, epoch, and level
/// counters. Create with [`RTree::reader`]; clone freely — one per
/// session thread is the serving layer's pattern.
pub struct TreeReader<R: Record, S: PageStore> {
    store: S,
    epoch: Arc<TreeEpoch>,
    levels: Arc<LevelCounters>,
    _records: std::marker::PhantomData<fn() -> R>,
}

impl<R: Record, S: PageStore + Clone> Clone for TreeReader<R, S> {
    fn clone(&self) -> Self {
        TreeReader {
            store: self.store.clone(),
            epoch: Arc::clone(&self.epoch),
            levels: Arc::clone(&self.levels),
            _records: std::marker::PhantomData,
        }
    }
}

impl<R: Record, S: PageStore> TreeReader<R, S> {
    pub(crate) fn new(store: S, epoch: Arc<TreeEpoch>, levels: Arc<LevelCounters>) -> Self {
        TreeReader {
            store,
            epoch,
            levels,
            _records: std::marker::PhantomData,
        }
    }

    /// The shared epoch (version counter + retry/conflict stats).
    pub fn epoch(&self) -> &TreeEpoch {
        &self.epoch
    }

    /// Perform one raw page-to-node read, recording it in the shared
    /// level counters and trace ring. The caller decides validity.
    fn read_raw(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError> {
        let node = NodeRef::parse(self.store.try_read_page(page)?);
        self.levels.record_read(node.level());
        obs::trace(obs::TraceEvent::NodeVisit {
            page: page.0 as u64,
            level: node.level(),
        });
        Ok(node)
    }

    /// Pin the current (even) tree version, returning a snapshot view.
    /// Fails with [`StorageError::Conflict`] only if the writer never
    /// leaves its write section within the spin budget.
    pub fn pin(&self) -> Result<SnapshotReader<'_, R, S>, StorageError> {
        let Some(seq) = self.epoch.stable_seq() else {
            self.epoch.note_conflict();
            return Err(StorageError::Conflict {
                page: self.epoch.root(),
            });
        };
        // Root/height/len publish before the sequence goes even, so under
        // an unchanged even sequence this triple is the pinned version's.
        let root = self.epoch.root();
        let height = self.epoch.height();
        let len = self.epoch.len();
        if self.epoch.seq() != seq {
            self.epoch.note_conflict();
            return Err(StorageError::Conflict { page: root });
        }
        Ok(SnapshotReader {
            reader: self,
            seq,
            root,
            height,
            len,
        })
    }
}

impl<R: Record, S: PageStore> TreeRead<R> for TreeReader<R, S> {
    fn root_page(&self) -> PageId {
        self.epoch.root()
    }

    fn height(&self) -> u32 {
        self.epoch.height()
    }

    fn len(&self) -> u64 {
        self.epoch.len()
    }

    fn try_read_node(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError> {
        let mut attempts = 0;
        loop {
            let Some(s0) = self.epoch.stable_seq() else {
                self.epoch.note_conflict();
                return Err(StorageError::Conflict { page });
            };
            let node = self.read_raw(page)?;
            if self.epoch.seq() == s0 {
                return Ok(node);
            }
            // The visit overlapped a write section: the read was
            // performed (and counted) but must not be delivered.
            self.epoch.note_retry();
            attempts += 1;
            if attempts >= VISIT_RETRIES {
                self.epoch.note_conflict();
                return Err(StorageError::Conflict { page });
            }
        }
    }
}

impl<R: Record, S: PageStore> TreeReadRetry<R> for TreeReader<R, S> {
    fn with_consistent<T>(
        &self,
        mut f: impl FnMut(&dyn TreeRead<R>) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let mut attempts = 0;
        loop {
            let snap = self.pin()?;
            match f(&snap) {
                Err(StorageError::Conflict { .. }) if attempts + 1 < SNAPSHOT_RETRIES => {
                    attempts += 1;
                }
                r => return r,
            }
        }
    }
}

/// A view pinned to one tree version: every delivered read is validated
/// against the pinned sequence, so a closure that completes over this
/// view observed a single, fully consistent tree.
pub struct SnapshotReader<'a, R: Record, S: PageStore> {
    reader: &'a TreeReader<R, S>,
    seq: u64,
    root: PageId,
    height: u32,
    len: u64,
}

impl<R: Record, S: PageStore> TreeRead<R> for SnapshotReader<'_, R, S> {
    fn root_page(&self) -> PageId {
        self.root
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn try_read_node(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError> {
        let epoch = self.reader.epoch();
        // Cheap pre-check: once the version moved there is no point
        // paying for the page read — nothing it returns may be used.
        if epoch.seq() != self.seq {
            epoch.note_conflict();
            return Err(StorageError::Conflict { page });
        }
        let node = self.reader.read_raw(page)?;
        if epoch.seq() == self.seq {
            Ok(node)
        } else {
            epoch.note_retry();
            epoch.note_conflict();
            Err(StorageError::Conflict { page })
        }
    }
}
