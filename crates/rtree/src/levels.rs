//! Per-level node I/O counters — the tree's own observability surface.
//!
//! The paper's figures split disk-access bars into leaf and upper-level
//! accesses; a live server needs the same split *while running* to see
//! whether a workload is root-bound (hot upper levels, cache-friendly) or
//! leaf-bound (wide scans). [`LevelCounters`] counts every node read and
//! write by level with relaxed atomics, so the shared tree behind the
//! serving layer's `RwLock` can be counted from any thread at zero
//! coordination cost, and [`LevelSnapshot`] supports interval arithmetic
//! (`after - before`) for exact attribution of a serving run — the
//! reconciliation identities in `exp_service` depend on it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Levels tracked individually; an implausibly deep tree saturates into
/// the last slot rather than indexing out of bounds.
pub const MAX_TRACKED_LEVELS: usize = 16;

/// Per-level read/write counters (level 0 = leaf).
#[derive(Debug, Default)]
pub struct LevelCounters {
    reads: [AtomicU64; MAX_TRACKED_LEVELS],
    writes: [AtomicU64; MAX_TRACKED_LEVELS],
}

impl LevelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> LevelCounters {
        LevelCounters::default()
    }

    #[inline]
    fn slot(level: u32) -> usize {
        (level as usize).min(MAX_TRACKED_LEVELS - 1)
    }

    /// Record one node read at `level`.
    #[inline]
    pub fn record_read(&self, level: u32) {
        self.reads[Self::slot(level)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one node write at `level`.
    #[inline]
    pub fn record_write(&self, level: u32) {
        self.writes[Self::slot(level)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> LevelSnapshot {
        let mut s = LevelSnapshot::default();
        for i in 0..MAX_TRACKED_LEVELS {
            s.reads[i] = self.reads[i].load(Ordering::Relaxed);
            s.writes[i] = self.writes[i].load(Ordering::Relaxed);
        }
        s
    }
}

/// A copy of [`LevelCounters`] supporting `after - before` deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelSnapshot {
    /// Node reads per level (0 = leaf).
    pub reads: [u64; MAX_TRACKED_LEVELS],
    /// Node writes per level (0 = leaf).
    pub writes: [u64; MAX_TRACKED_LEVELS],
}

impl LevelSnapshot {
    /// Total node reads over all levels.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total node writes over all levels.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Leaf-level reads (the paper's leaf-access bar).
    pub fn leaf_reads(&self) -> u64 {
        self.reads[0]
    }

    /// Reads above the leaf level.
    pub fn upper_reads(&self) -> u64 {
        self.total_reads() - self.leaf_reads()
    }

    /// Publish non-zero per-level read/write gauges plus totals into
    /// `registry` under `{prefix}.reads.l{i}` / `{prefix}.writes.l{i}`.
    pub fn publish_to(&self, registry: &obs::MetricsRegistry, prefix: &str) {
        for i in 0..MAX_TRACKED_LEVELS {
            if self.reads[i] > 0 {
                registry
                    .gauge(&format!("{prefix}.reads.l{i}"))
                    .set(self.reads[i] as i64);
            }
            if self.writes[i] > 0 {
                registry
                    .gauge(&format!("{prefix}.writes.l{i}"))
                    .set(self.writes[i] as i64);
            }
        }
        registry
            .gauge(&format!("{prefix}.reads.total"))
            .set(self.total_reads() as i64);
        registry
            .gauge(&format!("{prefix}.writes.total"))
            .set(self.total_writes() as i64);
    }
}

impl std::ops::Sub for LevelSnapshot {
    type Output = LevelSnapshot;

    fn sub(self, rhs: LevelSnapshot) -> LevelSnapshot {
        let mut out = LevelSnapshot::default();
        for i in 0..MAX_TRACKED_LEVELS {
            out.reads[i] = self.reads[i] - rhs.reads[i];
            out.writes[i] = self.writes[i] - rhs.writes[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_level() {
        let c = LevelCounters::new();
        c.record_read(0);
        c.record_read(0);
        c.record_read(2);
        c.record_write(1);
        let s = c.snapshot();
        assert_eq!(s.reads[0], 2);
        assert_eq!(s.reads[2], 1);
        assert_eq!(s.writes[1], 1);
        assert_eq!(s.total_reads(), 3);
        assert_eq!(s.leaf_reads(), 2);
        assert_eq!(s.upper_reads(), 1);
        assert_eq!(s.total_writes(), 1);
    }

    #[test]
    fn deep_levels_saturate_instead_of_panicking() {
        let c = LevelCounters::new();
        c.record_read(999);
        assert_eq!(c.snapshot().reads[MAX_TRACKED_LEVELS - 1], 1);
    }

    #[test]
    fn snapshot_delta() {
        let c = LevelCounters::new();
        c.record_read(0);
        let before = c.snapshot();
        c.record_read(0);
        c.record_read(1);
        let delta = c.snapshot() - before;
        assert_eq!(delta.reads[0], 1);
        assert_eq!(delta.reads[1], 1);
        assert_eq!(delta.total_reads(), 2);
    }

    #[test]
    fn publish_emits_only_live_levels_plus_totals() {
        let c = LevelCounters::new();
        c.record_read(0);
        c.record_read(3);
        let reg = obs::MetricsRegistry::new();
        c.snapshot().publish_to(&reg, "rtree");
        assert_eq!(reg.gauge_value("rtree.reads.l0"), 1);
        assert_eq!(reg.gauge_value("rtree.reads.l3"), 1);
        assert_eq!(reg.gauge_value("rtree.reads.total"), 2);
        assert!(reg.get("rtree.reads.l1").is_none());
    }
}
