//! # rtree — a paginated R-tree for spatio-temporal motion data
//!
//! The index substrate of the EDBT 2002 reproduction (§3.2): motion
//! segments are indexed by their space-time bounding boxes in an R-tree
//! whose nodes map one-to-one onto the 4 KiB pages of the [`storage`]
//! simulated disk. Loading a node is exactly one disk access — the paper's
//! I/O metric.
//!
//! Features required by the paper and provided here:
//!
//! * **Generic keys** — the tree is generic over [`Key`]; the provided
//!   implementation is [`stkit::StBox`] with `T = 1` temporal axis (native
//!   space indexing) or `T = 2` (the double-temporal-axes layout NPDQ
//!   needs, §4.2 Fig. 5(b)).
//! * **Exact leaf records** — leaves store actual motion segments (not
//!   just their boxes) so queries can run the exact segment-vs-query test
//!   of §3.2 and avoid false admissions ([`Record`]).
//! * **Guttman insertion** with linear or quadratic split
//!   ([`SplitPolicy`]), modified per §4.1 so that all nodes created by a
//!   cascading split lie **on one path**: the split group containing the
//!   cascading new entry always receives the freshly allocated page. The
//!   insert reports the lowest common ancestor of everything new
//!   ([`InsertReport`]) so running dynamic queries can be notified.
//! * **Node timestamps** — every node on an insertion path is stamped
//!   with the logical time of the insert, which is what lets NPDQ decide
//!   whether the previous query may be used to discard a subtree (§4.2).
//! * **STR bulk loading** at a configurable fill factor (the paper builds
//!   its index at 0.5).
//! * **Range search** with I/O and comparison counting — the *naive*
//!   baseline the paper compares against, and the building block for the
//!   first snapshot of every dynamic query.
//!
//! On-page geometry is `f32` (bounds rounded outward, so containment
//! invariants survive the narrowing); this reproduces the paper's fanout
//! of 145 (internal) / 127 (leaf) on 4 KiB pages for `d = 2`.

pub mod bulk;
pub mod epoch;
pub mod levels;
pub mod node;
pub mod reader;
pub mod records;
pub mod search;
pub mod split;
pub mod stbox_key;
pub mod traits;
pub mod tree;

pub use epoch::{EpochStats, TreeEpoch};
pub use levels::{LevelCounters, LevelSnapshot, MAX_TRACKED_LEVELS};
pub use node::{Node, NodeEntries, NodeRef, NodeView};
pub use reader::{SnapshotReader, TreeRead, TreeReadRetry, TreeReader};
pub use records::{DtaSegmentRecord, NsiSegmentRecord};
pub use search::{RangeQuery, SearchStats};
pub use split::SplitPolicy;
pub use traits::{Key, Record};
pub use tree::{InsertReport, Inserted, RTree, RTreeConfig};
