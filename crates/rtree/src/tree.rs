//! The paginated R-tree: construction, insertion, node access.

use crate::epoch::{EpochStats, TreeEpoch};
use crate::levels::LevelCounters;
use crate::node::{Node, NodeEntries, NodeRef};
use crate::reader::TreeReader;
use crate::split::{split, SplitPolicy};
use crate::traits::{Key, Record};
use std::sync::Arc;
use storage::{PageId, PageStore, StorageError};

/// Tuning knobs; defaults reproduce the paper's setup (§5).
#[derive(Clone, Copy, Debug)]
pub struct RTreeConfig {
    /// Minimum node fill on split, as a fraction of capacity. The paper
    /// uses 0.5.
    pub min_fill: f64,
    /// Split heuristic on overflow.
    pub split_policy: SplitPolicy,
    /// Target node fill for bulk loading (paper: 0.5).
    pub bulk_fill: f64,
    /// When `Some(k)`, STR bulk loading tiles only over the first `k`
    /// axes (spatial axes come first in `StBox` keys): pass `Some(2)` for
    /// 2-d data to get purely *spatial* clustering, the layout that makes
    /// NPDQ discardability effective for open-ended queries (§4.2).
    /// `None` tiles over all axes (balanced space-time clustering).
    pub bulk_leading_axes: Option<usize>,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            min_fill: 0.5,
            split_policy: SplitPolicy::Quadratic,
            bulk_fill: 0.5,
            bulk_leading_axes: None,
        }
    }
}

/// What an insertion created, for notifying running dynamic queries
/// (§4.1 "Update Management").
#[derive(Clone, Debug, PartialEq)]
pub enum Inserted<K, R> {
    /// No node was split: only this record is new. Running queries check
    /// it against their trajectory directly.
    Record(R),
    /// Splits occurred; `page` is the lowest common ancestor of every
    /// newly created node (the first ancestor that absorbed a split
    /// without splitting itself, or the new root). Running queries
    /// re-enqueue this subtree.
    Subtree {
        /// Page of the LCA node.
        page: PageId,
        /// Bounding key of the LCA at insertion time.
        key: K,
        /// Level of the LCA (0 = leaf).
        level: u32,
    },
}

/// Outcome of one insertion.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertReport<K, R> {
    /// What to forward to running dynamic queries.
    pub notify: Inserted<K, R>,
    /// True iff the root split (queries may prefer to rebuild their
    /// queues, §4.1).
    pub root_split: bool,
}

/// Outcome of a recursive delete step.
enum DeleteOutcome<K> {
    /// The record was not in this subtree.
    NotFound,
    /// Deleted; the subtree's new bounding key.
    Deleted { new_key: K },
    /// Deleted, and this node dissolved (underflow); its contents were
    /// added to the orphan lists and its page freed.
    Dissolved,
}

/// A paginated R-tree over records of type `R`, stored in `S`.
///
/// Every node occupies one page; loading a node through [`RTree::load`]
/// costs exactly one [`PageStore::read`], which is the paper's disk-access
/// metric.
///
/// ```
/// use rtree::{NsiSegmentRecord, RTree, RTreeConfig};
/// use storage::Pager;
/// use stkit::{Interval, Rect, StBox};
///
/// let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
/// for i in 0..500u32 {
///     let x = (i % 25) as f64;
///     let y = (i / 25) as f64;
///     let rec = NsiSegmentRecord::new(
///         i, 0, Interval::new(0.0, 1.0), [x, y], [x + 0.5, y + 0.5]);
///     tree.insert(rec, i as f64); // the f64 is the §4.2 timestamp
/// }
/// assert_eq!(tree.len(), 500);
/// // Range search with the exact leaf test (§3.2).
/// let q = StBox::new(
///     Rect::from_corners([5.0, 5.0], [9.0, 9.0]),
///     Rect::new([Interval::new(0.0, 1.0)]),
/// );
/// let (hits, stats) = tree.range_collect(&q, |_| true);
/// assert!(!hits.is_empty());
/// assert!(stats.nodes_visited > 0); // every node load = one disk access
/// ```
pub struct RTree<R: Record, S: PageStore> {
    store: S,
    config: RTreeConfig,
    root: PageId,
    height: u32,
    len: u64,
    /// Reusable serialization buffer for [`Self::write_node`], so the
    /// write path allocates once per tree instead of once per node write.
    scratch: Vec<u8>,
    /// Per-level node read/write counters (relaxed atomics, shared with
    /// any [`TreeReader`] handles so optimistic reads count here too).
    levels: Arc<LevelCounters>,
    /// Seqlock-style version counter bracketing every mutation; shared
    /// with [`TreeReader`] handles for latch-free validated reads.
    epoch: Arc<TreeEpoch>,
    _records: std::marker::PhantomData<fn() -> R>,
}

impl<R: Record, S: PageStore> RTree<R, S> {
    /// Create an empty tree (a single empty leaf as root).
    pub fn new(store: S, config: RTreeConfig) -> Self {
        let root = store.alloc();
        let node = Node::<R::Key, R>::empty_leaf();
        let page_size = store.page_size();
        store.write(root, &node.serialize(page_size));
        RTree {
            store,
            config,
            root,
            height: 1,
            len: 0,
            scratch: Vec::new(),
            levels: Arc::new(LevelCounters::new()),
            epoch: Arc::new(TreeEpoch::new(root, 1, 0)),
            _records: std::marker::PhantomData,
        }
    }

    /// Re-open a tree whose pages already live in `store` (e.g. loaded
    /// from a persisted page file): the caller supplies the metadata that
    /// [`RTree::metadata`] returned when the tree was saved.
    pub fn reopen(store: S, config: RTreeConfig, root: PageId, height: u32, len: u64) -> Self {
        RTree {
            store,
            config,
            root,
            height,
            len,
            scratch: Vec::new(),
            levels: Arc::new(LevelCounters::new()),
            epoch: Arc::new(TreeEpoch::new(root, height, len)),
            _records: std::marker::PhantomData,
        }
    }

    /// Rewrap the underlying store (e.g. `S` → `Arc<S>` so read handles
    /// can share it), preserving the tree's metadata, counters, and —
    /// crucially — its [`TreeEpoch`], so existing readers stay valid.
    pub fn map_store<S2: PageStore>(self, f: impl FnOnce(S) -> S2) -> RTree<R, S2> {
        RTree {
            store: f(self.store),
            config: self.config,
            root: self.root,
            height: self.height,
            len: self.len,
            scratch: self.scratch,
            levels: self.levels,
            epoch: self.epoch,
            _records: std::marker::PhantomData,
        }
    }

    /// The metadata needed to [`RTree::reopen`] this tree later:
    /// `(root page, height, record count)`.
    pub fn metadata(&self) -> (PageId, u32, u64) {
        (self.root, self.height, self.len)
    }

    /// The page id of the root node.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Number of levels (1 = the root is a leaf). The paper's tree of
    /// ~500 k segments has height 3.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying page store (for I/O snapshots).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Leaf fanout under the store's page size.
    pub fn leaf_capacity(&self) -> usize {
        Node::<R::Key, R>::leaf_capacity(self.store.page_size())
    }

    /// Internal fanout under the store's page size.
    pub fn internal_capacity(&self) -> usize {
        Node::<R::Key, R>::internal_capacity(self.store.page_size())
    }

    /// Per-level node read/write counters, accumulated since the tree
    /// was opened. Snapshot before/after an operation and subtract to
    /// attribute its node I/O by level.
    pub fn level_counters(&self) -> &LevelCounters {
        &self.levels
    }

    /// The tree's version epoch (sequence counter + optimistic-read
    /// retry/conflict statistics).
    pub fn epoch(&self) -> &TreeEpoch {
        &self.epoch
    }

    /// Snapshot of the optimistic-read counters ([`EpochStats`]).
    pub fn epoch_stats(&self) -> EpochStats {
        self.epoch.stats()
    }

    /// Create a latch-free read handle sharing this tree's store, epoch,
    /// and level counters. The handle's reads validate against the epoch
    /// and therefore stay safe while a writer (holding `&mut self`
    /// elsewhere, e.g. behind a lock) mutates concurrently.
    pub fn reader(&self) -> TreeReader<R, S>
    where
        S: Clone,
    {
        TreeReader::new(
            self.store.clone(),
            Arc::clone(&self.epoch),
            Arc::clone(&self.levels),
        )
    }

    /// Load a node into its owned, mutation-ready form — **one simulated
    /// disk access**. The write path (insert/split/delete) uses this; the
    /// read path should prefer the zero-copy [`Self::read_node`].
    pub fn load(&self, page: PageId) -> Node<R::Key, R> {
        let node = Node::deserialize(&self.store.read_page(page));
        self.levels.record_read(node.level);
        obs::trace(obs::TraceEvent::NodeVisit {
            page: page.0 as u64,
            level: node.level,
        });
        node
    }

    /// Read a node zero-copy — **one simulated disk access**, no page
    /// copy and no entry materialization; entries decode lazily as the
    /// [`NodeRef`]'s iterators advance.
    pub fn read_node(&self, page: PageId) -> NodeRef<R::Key, R> {
        self.try_read_node(page)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Fallible form of [`Self::read_node`]: surfaces device faults as
    /// [`StorageError`] carrying the failing page, so query engines can
    /// report *which subtree* failed and retry or degrade instead of
    /// panicking. A failed read records nothing — no level counter, no
    /// trace event — so the I/O reconciliation identities only count
    /// reads that actually served bytes.
    pub fn try_read_node(&self, page: PageId) -> Result<NodeRef<R::Key, R>, StorageError> {
        let node = NodeRef::parse(self.store.try_read_page(page)?);
        self.levels.record_read(node.level());
        obs::trace(obs::TraceEvent::NodeVisit {
            page: page.0 as u64,
            level: node.level(),
        });
        Ok(node)
    }

    /// Write a node image back to its page, serializing through the
    /// tree's reusable scratch buffer.
    pub(crate) fn write_node(&mut self, page: PageId, node: &Node<R::Key, R>) {
        node.serialize_into(&mut self.scratch, self.store.page_size());
        self.store.write(page, &self.scratch);
        self.levels.record_write(node.level);
    }

    pub(crate) fn set_root(&mut self, root: PageId, height: u32, len: u64) {
        self.root = root;
        self.height = height;
        self.len = len;
        // Construction-time publication (bulk load): no readers exist yet,
        // so no write section is needed.
        self.epoch.publish(root, height, len);
    }

    fn min_fill_count(&self, capacity: usize) -> usize {
        // At least 1, at most half of (capacity + 1) so a split of
        // capacity+1 entries is always feasible.
        let m = (capacity as f64 * self.config.min_fill).floor() as usize;
        m.clamp(1, capacity.div_ceil(2))
    }

    /// Insert one record, stamping every touched node with logical time
    /// `now` (§4.2 update management) and reporting what running dynamic
    /// queries must be told (§4.1 update management).
    pub fn insert(&mut self, rec: R, now: f64) -> InsertReport<R::Key, R> {
        self.try_insert(rec, now)
            .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"))
    }

    /// Fallible form of [`Self::insert`]. Device faults can only surface
    /// during the read-only ChooseLeaf descent, *before* any page is
    /// written: on `Err` the tree is unchanged, so the caller can release
    /// its locks, back off, and retry the same record — the serving
    /// layer's writer does exactly that without holding the tree write
    /// lock across backoff sleeps.
    ///
    /// The one exception is [`StorageError::Full`]: a split needs a fresh
    /// page, and the device refusing it mid-cascade can strand a
    /// completed lower-level split with no parent link (`len` is not
    /// bumped; readers still parse the tree, but records moved into the
    /// orphan page are unreachable). `Full` is not retryable — the caller
    /// must treat it as fatal for the writing session, which is exactly
    /// what the serving writer's `SessionOutcome::Failed` degradation
    /// does. With the WAL enabled no update is lost: the batch's record
    /// is already durable and recovery replays it onto a larger device.
    pub fn try_insert(
        &mut self,
        rec: R,
        now: f64,
    ) -> Result<InsertReport<R::Key, R>, StorageError> {
        // Bracket the mutation in a write section so optimistic readers
        // discard any node visit that overlapped it. On `Err` the tree is
        // unchanged and the bump merely costs readers a spurious retry.
        self.epoch.begin_write();
        let out = self.try_insert_inner(rec, now);
        self.epoch.end_write(self.root, self.height, self.len);
        out
    }

    /// [`Self::try_insert`] without the epoch write-section bracket, for
    /// internal reentrant use (delete's orphan reinsertion runs inside
    /// delete's own write section; nesting sections would flip the
    /// sequence even mid-mutation and expose torn state to readers).
    fn try_insert_inner(
        &mut self,
        rec: R,
        now: f64,
    ) -> Result<InsertReport<R::Key, R>, StorageError> {
        // Page-domain key: what the record's key becomes after one trip
        // through the f32 page encoding.
        let key = {
            let mut buf = Vec::with_capacity(R::Key::ENCODED_LEN);
            rec.key().encode(&mut buf);
            R::Key::decode(&buf)
        };

        // ChooseLeaf: descend by least enlargement through zero-copy node
        // views, remembering the path. Nodes are materialized into their
        // owned form only on the unwind below, where they are mutated.
        struct Step<K: Key, R: Record<Key = K>> {
            page: PageId,
            node: NodeRef<K, R>,
            chosen: usize,
        }
        let mut path: Vec<Step<R::Key, R>> = Vec::with_capacity(self.height as usize);
        let mut cur = self.root;
        let (leaf_page, mut leaf) = loop {
            let node = self.try_read_node(cur)?;
            if node.is_leaf() {
                break (cur, node.to_node());
            }
            let chosen = choose_subtree(node.internal_entries().map(|(k, _)| k), &key);
            let next = node.internal_entry(chosen).1;
            path.push(Step {
                page: cur,
                node,
                chosen,
            });
            cur = next;
        };

        let leaf_cap = self.leaf_capacity();
        let internal_cap = self.internal_capacity();

        leaf.timestamp = now;
        let NodeEntries::Leaf(recs) = &mut leaf.entries else {
            unreachable!()
        };
        recs.push(rec);

        let mut notify: Option<Inserted<R::Key, R>> = None;
        // Entry that still has to be added to the next node up.
        let mut pending: Option<(R::Key, PageId)> = None;
        // Updated bounding key of the child we descended into.
        let mut child_key;

        if leaf.len() <= leaf_cap {
            child_key = leaf.bounding_key();
            self.write_node(leaf_page, &leaf);
            notify = Some(Inserted::Record(rec));
        } else {
            let (old_node, new_node) = self.split_node(&leaf, leaf.len() - 1);
            child_key = old_node.bounding_key();
            let new_page = self.store.try_alloc()?;
            self.write_node(leaf_page, &old_node);
            self.write_node(new_page, &new_node);
            pending = Some((new_node.bounding_key(), new_page));
        }

        while let Some(Step { page, node, chosen }) = path.pop() {
            let mut node = node.to_node();
            node.timestamp = now;
            let NodeEntries::Internal(entries) = &mut node.entries else {
                unreachable!()
            };
            entries[chosen].0 = child_key;
            if let Some((nk, np)) = pending.take() {
                entries.push((nk, np));
                if node.len() > internal_cap {
                    let (old_node, new_node) = self.split_node(&node, node.len() - 1);
                    child_key = old_node.bounding_key();
                    let new_page = self.store.try_alloc()?;
                    self.write_node(page, &old_node);
                    self.write_node(new_page, &new_node);
                    pending = Some((new_node.bounding_key(), new_page));
                } else {
                    child_key = node.bounding_key();
                    self.write_node(page, &node);
                    if notify.is_none() {
                        // First ancestor that absorbed the split chain:
                        // the LCA of all newly created nodes (§4.1).
                        notify = Some(Inserted::Subtree {
                            page,
                            key: child_key,
                            level: node.level,
                        });
                    }
                }
            } else {
                child_key = node.bounding_key();
                self.write_node(page, &node);
            }
        }

        let mut root_split = false;
        if let Some((nk, np)) = pending {
            // The old root split: grow the tree.
            let new_root = self.store.try_alloc()?;
            let mut root_node =
                Node::<R::Key, R>::internal(self.height, vec![(child_key, self.root), (nk, np)]);
            root_node.timestamp = now;
            self.write_node(new_root, &root_node);
            self.root = new_root;
            self.height += 1;
            root_split = true;
            notify = Some(Inserted::Subtree {
                page: new_root,
                key: root_node.bounding_key(),
                level: root_node.level,
            });
        }

        self.len += 1;
        Ok(InsertReport {
            notify: notify.expect("notify always set"),
            root_split,
        })
    }

    /// Delete one record (matched by full equality), condensing the tree
    /// à la Guttman: nodes that underflow are dissolved and their
    /// contents reinserted at the appropriate level; the root is shrunk
    /// when it is an internal node with a single child. Returns `true`
    /// iff the record was found.
    ///
    /// Deletion is an index-maintenance operation (e.g. expiring old
    /// motion history); the paper's update-management protocol covers
    /// *insertions* only, so dynamic queries running concurrently with
    /// deletes should be rebuilt afterwards.
    pub fn delete(&mut self, rec: &R, now: f64) -> bool {
        // One write section covers the whole operation, orphan
        // reinsertion included — which is why the body calls the
        // non-bumping `try_insert_inner`/`insert_subtree` forms.
        self.epoch.begin_write();
        let deleted = self.delete_inner(rec, now);
        self.epoch.end_write(self.root, self.height, self.len);
        deleted
    }

    fn delete_inner(&mut self, rec: &R, now: f64) -> bool {
        let key = rec.key();
        let mut orphan_records: Vec<R> = Vec::new();
        let mut orphan_subtrees: Vec<(R::Key, PageId, u32)> = Vec::new();
        let root = self.root;
        let outcome = self.delete_rec(
            root,
            &key,
            rec,
            now,
            &mut orphan_records,
            &mut orphan_subtrees,
        );
        if !matches!(outcome, DeleteOutcome::Deleted { .. }) {
            return false;
        }
        self.len -= 1;

        // Reinsert orphans: subtrees at their own level first (deepest
        // first so the tree height is adequate), then records.
        orphan_subtrees.sort_by_key(|&(_, _, level)| std::cmp::Reverse(level));
        for (k, page, level) in orphan_subtrees {
            self.insert_subtree(k, page, level, now);
        }
        for r in orphan_records {
            self.try_insert_inner(r, now)
                .unwrap_or_else(|e| panic!("unrecoverable storage error: {e}"));
            self.len -= 1; // the reinsertion counted it again
        }

        // Shrink the root while it is an internal node with one child.
        loop {
            let root_node = self.read_node(self.root);
            if root_node.is_leaf() || root_node.len() != 1 {
                break;
            }
            let child = root_node.internal_entry(0).1;
            self.store.free(self.root);
            self.root = child;
            self.height -= 1;
        }
        true
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        key: &R::Key,
        rec: &R,
        now: f64,
        orphan_records: &mut Vec<R>,
        orphan_subtrees: &mut Vec<(R::Key, PageId, u32)>,
    ) -> DeleteOutcome<R::Key> {
        let mut node = self.load(page);
        let is_root = page == self.root;
        let cap = node.capacity(self.store.page_size());
        let min_fill = if is_root { 1 } else { self.min_fill_count(cap) };
        match &mut node.entries {
            NodeEntries::Leaf(recs) => {
                let Some(pos) = recs.iter().position(|r| r == rec) else {
                    return DeleteOutcome::NotFound;
                };
                recs.remove(pos);
                node.timestamp = now;
                let underfull = node.len() < min_fill && !is_root;
                if underfull {
                    // Dissolve: all remaining records get reinserted.
                    orphan_records.extend_from_slice(node.leaf_records());
                    self.store.free(page);
                    DeleteOutcome::Dissolved
                } else {
                    let k = node.bounding_key();
                    self.write_node(page, &node);
                    DeleteOutcome::Deleted { new_key: k }
                }
            }
            NodeEntries::Internal(entries) => {
                let mut hit: Option<(usize, DeleteOutcome<R::Key>)> = None;
                for (i, (k, child)) in entries.iter().enumerate() {
                    if !k.overlaps(key) {
                        continue;
                    }
                    let out = self.delete_rec(
                        *child,
                        key,
                        rec,
                        now,
                        orphan_records,
                        orphan_subtrees,
                    );
                    if !matches!(out, DeleteOutcome::NotFound) {
                        hit = Some((i, out));
                        break;
                    }
                }
                let Some((idx, out)) = hit else {
                    return DeleteOutcome::NotFound;
                };
                // Re-borrow mutably after the recursive calls.
                let NodeEntries::Internal(entries) = &mut node.entries else {
                    unreachable!()
                };
                match out {
                    DeleteOutcome::Deleted { new_key } => {
                        entries[idx].0 = new_key;
                    }
                    DeleteOutcome::Dissolved => {
                        entries.remove(idx);
                    }
                    DeleteOutcome::NotFound => unreachable!(),
                }
                node.timestamp = now;
                let underfull = node.len() < min_fill && !is_root;
                if underfull {
                    // Dissolve this node too: its remaining children are
                    // orphan subtrees at the level below.
                    for (k, child) in node.internal_entries() {
                        orphan_subtrees.push((*k, *child, node.level - 1));
                    }
                    self.store.free(page);
                    DeleteOutcome::Dissolved
                } else {
                    let k = node.bounding_key();
                    self.write_node(page, &node);
                    DeleteOutcome::Deleted { new_key: k }
                }
            }
        }
    }

    /// Reinsert a whole subtree (root `page` at `level`, bounding `key`)
    /// during condensation: descend by least enlargement to the node at
    /// `level + 1` and add the entry there, splitting upward as usual.
    fn insert_subtree(&mut self, key: R::Key, page: PageId, level: u32, now: f64) {
        // If the tree shrank below the subtree's level, grow it by
        // making a new root (rare; happens when the old root dissolved).
        if level + 1 >= self.height {
            let new_root = self.store.alloc();
            let old_root_key = self.read_node(self.root).bounding_key();
            let mut root_node = Node::<R::Key, R>::internal(
                self.height.max(level + 1),
                vec![(old_root_key, self.root), (key, page)],
            );
            root_node.timestamp = now;
            self.write_node(new_root, &root_node);
            self.root = new_root;
            self.height = root_node.level + 1;
            return;
        }
        struct Step<K: Key, R: Record<Key = K>> {
            page: PageId,
            node: NodeRef<K, R>,
            chosen: usize,
        }
        let mut path: Vec<Step<R::Key, R>> = Vec::new();
        let mut cur = self.root;
        loop {
            let node = self.read_node(cur);
            if node.level() == level + 1 {
                path.push(Step {
                    page: cur,
                    node,
                    chosen: usize::MAX,
                });
                break;
            }
            let chosen = choose_subtree(node.internal_entries().map(|(k, _)| k), &key);
            let next = node.internal_entry(chosen).1;
            path.push(Step {
                page: cur,
                node,
                chosen,
            });
            cur = next;
        }
        let internal_cap = self.internal_capacity();
        let mut pending: Option<(R::Key, PageId)> = Some((key, page));
        let mut child_key = R::Key::empty();
        let mut first = true;
        while let Some(Step { page, node, chosen }) = path.pop() {
            let mut node = node.to_node();
            node.timestamp = now;
            let NodeEntries::Internal(entries) = &mut node.entries else {
                unreachable!()
            };
            if !first && chosen != usize::MAX {
                entries[chosen].0 = child_key;
            } else if !first {
                unreachable!("only the target node lacks a chosen child");
            }
            if let Some((nk, np)) = pending.take() {
                entries.push((nk, np));
                if node.len() > internal_cap {
                    let (old_node, new_node) = self.split_node(&node, node.len() - 1);
                    child_key = old_node.bounding_key();
                    let new_page = self.store.alloc();
                    self.write_node(page, &old_node);
                    self.write_node(new_page, &new_node);
                    pending = Some((new_node.bounding_key(), new_page));
                } else {
                    child_key = node.bounding_key();
                    self.write_node(page, &node);
                }
            } else {
                child_key = node.bounding_key();
                self.write_node(page, &node);
            }
            first = false;
        }
        if let Some((nk, np)) = pending {
            let new_root = self.store.alloc();
            let mut root_node =
                Node::<R::Key, R>::internal(self.height, vec![(child_key, self.root), (nk, np)]);
            root_node.timestamp = now;
            self.write_node(new_root, &root_node);
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Split an overflowing node. `new_entry_idx` is the position of the
    /// entry whose arrival caused the overflow; per §4.1, the group
    /// containing it becomes the *new* node so that cascading splits stay
    /// on one path (the old page keeps the other group).
    fn split_node(
        &self,
        node: &Node<R::Key, R>,
        new_entry_idx: usize,
    ) -> (Node<R::Key, R>, Node<R::Key, R>) {
        let capacity = node.capacity(self.store.page_size()) ;
        let min_fill = self.min_fill_count(capacity);
        match &node.entries {
            NodeEntries::Leaf(recs) => {
                let keys: Vec<R::Key> = recs.iter().map(Record::key).collect();
                let part = split(self.config.split_policy, &keys, min_fill);
                let (a, b) = if part.a.contains(&new_entry_idx) {
                    (&part.b, &part.a)
                } else {
                    (&part.a, &part.b)
                };
                let mk = |idx: &[usize]| Node {
                    level: node.level,
                    timestamp: node.timestamp,
                    entries: NodeEntries::Leaf(idx.iter().map(|&i| recs[i]).collect()),
                };
                (mk(a), mk(b))
            }
            NodeEntries::Internal(entries) => {
                let keys: Vec<R::Key> = entries.iter().map(|(k, _)| *k).collect();
                let part = split(self.config.split_policy, &keys, min_fill);
                let (a, b) = if part.a.contains(&new_entry_idx) {
                    (&part.b, &part.a)
                } else {
                    (&part.a, &part.b)
                };
                let mk = |idx: &[usize]| Node {
                    level: node.level,
                    timestamp: node.timestamp,
                    entries: NodeEntries::Internal(idx.iter().map(|&i| entries[i]).collect()),
                };
                (mk(a), mk(b))
            }
        }
    }

    /// Walk the whole tree checking structural invariants; returns a
    /// description of the first violation. Test/debug aid — I/O counted.
    pub fn validate(&self) -> Result<TreeInventory, String> {
        let mut inv = TreeInventory {
            height: self.height,
            ..TreeInventory::default()
        };
        let root = self.load(self.root);
        if root.level + 1 != self.height {
            return Err(format!(
                "root level {} inconsistent with height {}",
                root.level, self.height
            ));
        }
        self.validate_node(self.root, &root, None, true, &mut inv)?;
        if inv.records != self.len {
            return Err(format!(
                "record count mismatch: counted {}, tree says {}",
                inv.records, self.len
            ));
        }
        Ok(inv)
    }

    fn validate_node(
        &self,
        page: PageId,
        node: &Node<R::Key, R>,
        parent_key: Option<&R::Key>,
        is_root: bool,
        inv: &mut TreeInventory,
    ) -> Result<(), String> {
        let cap = node.capacity(self.store.page_size());
        let min_fill = self.min_fill_count(cap);
        if node.len() > cap {
            return Err(format!("node {page} over capacity: {}", node.len()));
        }
        if !is_root && node.len() < min_fill.min(cap / 2) && self.len > 0 {
            // Bulk-loaded trees may have one underfull node per level
            // (the remainder tile); tolerate but record it.
            inv.underfull_nodes += 1;
        }
        if let Some(pk) = parent_key {
            let bk = node.bounding_key();
            if !pk.contains(&bk) {
                return Err(format!(
                    "parent key does not contain node {page}: {pk:?} vs {bk:?}"
                ));
            }
        }
        inv.nodes += 1;
        let lvl = node.level as usize;
        if inv.nodes_per_level.len() <= lvl {
            inv.nodes_per_level.resize(lvl + 1, 0);
            inv.entries_per_level.resize(lvl + 1, 0);
        }
        inv.nodes_per_level[lvl] += 1;
        inv.entries_per_level[lvl] += node.len() as u64;
        match &node.entries {
            NodeEntries::Leaf(recs) => {
                inv.records += recs.len() as u64;
            }
            NodeEntries::Internal(entries) => {
                for (k, child_page) in entries {
                    let child = self.load(*child_page);
                    if child.level + 1 != node.level {
                        return Err(format!(
                            "level discontinuity: node {page} level {} child {child_page} level {}",
                            node.level, child.level
                        ));
                    }
                    self.validate_node(*child_page, &child, Some(k), false, inv)?;
                }
            }
        }
        Ok(())
    }
}

/// Structural statistics gathered by [`RTree::validate`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeInventory {
    /// Total node count.
    pub nodes: u64,
    /// Total record count.
    pub records: u64,
    /// Tree height.
    pub height: u32,
    /// Nodes per level, index 0 = leaves.
    pub nodes_per_level: Vec<u64>,
    /// Entries per level, index 0 = leaves.
    pub entries_per_level: Vec<u64>,
    /// Nodes below the configured minimum fill (informational).
    pub underfull_nodes: u64,
}

impl TreeInventory {
    /// Average fill of leaf nodes (entries per node).
    pub fn avg_leaf_fill(&self) -> f64 {
        if self.nodes_per_level.is_empty() || self.nodes_per_level[0] == 0 {
            return 0.0;
        }
        self.entries_per_level[0] as f64 / self.nodes_per_level[0] as f64
    }
}

/// Guttman's ChooseLeaf criterion: least enlargement, ties by smaller
/// volume, then by position. Consumes keys lazily so callers can feed a
/// [`NodeView`](crate::node::NodeView) iterator without materializing.
pub(crate) fn choose_subtree<K: Key>(keys: impl Iterator<Item = K>, key: &K) -> usize {
    let mut seen = 0usize;
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for (i, k) in keys.enumerate() {
        seen += 1;
        let enl = k.enlargement(key);
        let vol = k.volume();
        if enl < best_enl || (enl == best_enl && vol < best_vol) {
            best = i;
            best_enl = enl;
            best_vol = vol;
        }
    }
    debug_assert!(seen > 0);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::NsiSegmentRecord;
    use storage::Pager;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn rec(i: u32) -> R {
        let x = (i % 40) as f64 * 2.0;
        let y = (i / 40) as f64 * 2.0;
        R::new(
            i,
            0,
            Interval::new((i % 10) as f64, (i % 10) as f64 + 1.0),
            [x, y],
            [x + 1.0, y + 1.0],
        )
    }

    fn build(n: u32) -> RTree<R, Pager> {
        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for i in 0..n {
            tree.insert(rec(i), i as f64);
        }
        tree
    }

    #[test]
    fn delete_missing_record_is_noop() {
        let mut tree = build(100);
        let ghost = R::new(9999, 0, Interval::new(0.0, 1.0), [1.0, 1.0], [2.0, 2.0]);
        assert!(!tree.delete(&ghost, 100.0));
        assert_eq!(tree.len(), 100);
        tree.validate().unwrap();
    }

    #[test]
    fn delete_single_record() {
        let mut tree = build(100);
        assert!(tree.delete(&rec(42), 100.0));
        assert_eq!(tree.len(), 99);
        tree.validate().unwrap();
        let (hits, _) = tree.range_collect(&rec(42).key(), |r| r == &rec(42));
        assert!(hits.is_empty(), "deleted record still findable");
        // Deleting it again fails.
        assert!(!tree.delete(&rec(42), 101.0));
    }

    #[test]
    fn delete_everything_shrinks_to_empty_root() {
        let mut tree = build(400);
        assert!(tree.height() >= 2);
        for i in 0..400 {
            assert!(tree.delete(&rec(i), 1000.0 + i as f64), "record {i}");
        }
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.height(), 1, "tree must shrink back to a leaf root");
        tree.validate().unwrap();
    }

    #[test]
    fn delete_half_keeps_other_half_searchable() {
        let mut tree = build(500);
        for i in (0..500).step_by(2) {
            assert!(tree.delete(&rec(i), 1000.0 + i as f64));
        }
        assert_eq!(tree.len(), 250);
        tree.validate().unwrap();
        for i in 0..500u32 {
            let target = rec(i);
            let (hits, _) = tree.range_collect(&target.key(), |r| r == &target);
            if i % 2 == 0 {
                assert!(hits.is_empty(), "record {i} should be gone");
            } else {
                assert_eq!(hits.len(), 1, "record {i} should remain");
            }
        }
    }

    #[test]
    fn interleaved_insert_delete() {
        let mut tree = build(200);
        for round in 0..5u32 {
            for i in 0..50 {
                assert!(tree.delete(&rec(i), 2000.0 + round as f64));
            }
            for i in 0..50 {
                tree.insert(rec(i), 3000.0 + round as f64);
            }
            tree.validate().unwrap();
        }
        assert_eq!(tree.len(), 200);
    }

    #[test]
    fn delete_updates_timestamps() {
        let mut tree = build(300);
        tree.delete(&rec(7), 777.0);
        let root = tree.load(tree.root_page());
        assert_eq!(root.timestamp, 777.0, "delete path must be stamped");
    }
}
