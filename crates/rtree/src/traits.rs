//! The key and leaf-record abstractions the tree is generic over.

/// A bounding key stored in R-tree entries.
///
/// Keys must support the box algebra the tree's maintenance and search
/// algorithms need, plus a *fixed-width* byte encoding so node capacity is
/// a static function of the page size.
///
/// # Encoding contract
///
/// `encode` must append exactly `ENCODED_LEN` bytes and `decode` must
/// invert it **conservatively**: the decoded key must *contain* the
/// original (lossy narrowing, e.g. `f64 → f32`, has to round bounds
/// outward). Keys derived from already-quantized data round-trip exactly.
pub trait Key: Copy + std::fmt::Debug + PartialEq {
    /// Exact number of bytes appended by [`Self::encode`].
    const ENCODED_LEN: usize;

    /// Number of axes, for bulk-load sorting.
    const AXES: usize;

    /// A key containing nothing; the identity of [`Self::cover`].
    fn empty() -> Self;

    /// True iff the key covers no point.
    fn is_empty(&self) -> bool;

    /// Minimum bounding key of both operands (empty operands ignored).
    fn cover(&self, other: &Self) -> Self;

    /// Componentwise intersection of both operands.
    fn intersect(&self, other: &Self) -> Self;

    /// True iff the keys share at least one point.
    fn overlaps(&self, other: &Self) -> bool;

    /// True iff `other` is fully inside `self`.
    fn contains(&self, other: &Self) -> bool;

    /// Measure (volume) of the key; 0 when empty.
    fn volume(&self) -> f64;

    /// Sum of extent lengths, the R*-style margin.
    fn margin(&self) -> f64;

    /// Volume growth of `self ⊎ other` over `self` — Guttman's
    /// least-enlargement criterion.
    fn enlargement(&self, other: &Self) -> f64;

    /// Lower bound along `axis ∈ 0..AXES` (spatial axes first).
    fn axis_lo(&self, axis: usize) -> f64;

    /// Upper bound along `axis ∈ 0..AXES` (spatial axes first).
    fn axis_hi(&self, axis: usize) -> f64;

    /// Center coordinate along `axis ∈ 0..AXES`, for STR bulk loading and
    /// the linear split's separation heuristic.
    fn center(&self, axis: usize) -> f64 {
        0.5 * (self.axis_lo(axis) + self.axis_hi(axis))
    }

    /// Append exactly [`Self::ENCODED_LEN`] bytes to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode from the first [`Self::ENCODED_LEN`] bytes of `buf`.
    fn decode(buf: &[u8]) -> Self;
}

/// A data record stored at the leaf level.
///
/// Records carry the *exact* geometry (e.g. a motion segment's endpoints)
/// rather than just a bounding box — the §3.2 optimization that lets
/// queries reject false admissions without extra I/O.
///
/// # Encoding contract
///
/// Fixed width, and `decode(encode(r)) == r` **exactly** — callers must
/// quantize coordinates to the on-page precision (`f32`) before
/// constructing records (see `mobiquery`'s ingest path).
pub trait Record: Copy + std::fmt::Debug + PartialEq {
    /// Bounding-key type this record is indexed under.
    type Key: Key;

    /// Exact number of bytes appended by [`Self::encode`].
    const ENCODED_LEN: usize;

    /// The bounding key under which the record is indexed.
    fn key(&self) -> Self::Key;

    /// Append exactly [`Self::ENCODED_LEN`] bytes to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode from the first [`Self::ENCODED_LEN`] bytes of `buf`.
    fn decode(buf: &[u8]) -> Self;
}
