//! Tree-version epoch: the writer side of the optimistic read protocol.
//!
//! The serving layer's sessions used to take a read lock for every frame
//! even when the writer was idle. [`TreeEpoch`] replaces that with a
//! seqlock-style sequence counter shared (via `Arc`) between the owning
//! [`RTree`](crate::RTree) and any number of
//! [`TreeReader`](crate::TreeReader) handles:
//!
//! * The **writer** (which already holds exclusive `&mut` access, e.g.
//!   behind the serving layer's write lock) brackets every mutating
//!   operation with [`TreeEpoch::begin_write`] (sequence becomes odd) and
//!   [`TreeEpoch::end_write`] (sequence becomes even again, and the new
//!   root/height/len are published atomically *before* the bump).
//! * **Readers** never block. They sample the sequence, read page
//!   snapshots (`Arc<[u8]>` — each page is internally consistent by
//!   construction, because writers install fresh buffers copy-on-write),
//!   and re-sample: an unchanged even sequence proves no write section
//!   overlapped the read, so *cross-page* invariants (parent/child
//!   agreement) held too. A changed sequence means the visit may span a
//!   mutation; the read is discarded and retried.
//!
//! Individual page reads can never return torn bytes (the store hands out
//! immutable `Arc` snapshots), so the only hazard the sequence guards
//! against is a multi-page view straddling a split — exactly what the
//! `tests/optimistic.rs` prefix oracle would catch.
//!
//! Accounting: a read that was performed but discarded on validation
//! failure still cost a pool access and a level-counter tick, so it is
//! counted in [`TreeEpoch::read_retries`]; the reconciliation identity
//! becomes `level reads == delivered (attributed) reads + read_retries`.
//! [`TreeEpoch::version_conflicts`] counts conflict *events* surfaced to
//! callers (an abandoned snapshot descent or an exhausted visit retry).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use storage::PageId;

/// Shared writer-version state for one tree. See the module docs for the
/// protocol; all fields are atomics so readers need no lock.
#[derive(Debug)]
pub struct TreeEpoch {
    /// Seqlock counter: odd while a write section is open.
    seq: AtomicU64,
    /// Published root page (valid whenever `seq` is even).
    root: AtomicU32,
    /// Published tree height (valid whenever `seq` is even).
    height: AtomicU32,
    /// Published record count (valid whenever `seq` is even).
    len: AtomicU64,
    /// Node reads performed (and level-counted) but discarded because the
    /// version moved mid-visit — the optimistic retry traffic.
    read_retries: AtomicU64,
    /// Conflict events surfaced to readers (abandoned snapshot descents
    /// or visit retries that exhausted their budget).
    version_conflicts: AtomicU64,
}

/// Point-in-time copy of the optimistic-read counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// See [`TreeEpoch::read_retries`].
    pub read_retries: u64,
    /// See [`TreeEpoch::version_conflicts`].
    pub version_conflicts: u64,
}

impl std::ops::Sub for EpochStats {
    type Output = EpochStats;
    fn sub(self, rhs: EpochStats) -> EpochStats {
        EpochStats {
            read_retries: self.read_retries - rhs.read_retries,
            version_conflicts: self.version_conflicts - rhs.version_conflicts,
        }
    }
}

impl std::ops::AddAssign for EpochStats {
    fn add_assign(&mut self, rhs: EpochStats) {
        self.read_retries += rhs.read_retries;
        self.version_conflicts += rhs.version_conflicts;
    }
}

/// How many times a reader re-samples an odd (write-in-progress) sequence
/// before giving up with a conflict. Write sections are one insert or
/// delete long, so this bound is generous; it exists so a writer that
/// dies mid-section degrades readers instead of hanging them.
const STABLE_SPINS: u32 = 1 << 16;

impl TreeEpoch {
    /// Fresh epoch publishing the given metadata at sequence 0.
    pub fn new(root: PageId, height: u32, len: u64) -> TreeEpoch {
        TreeEpoch {
            seq: AtomicU64::new(0),
            root: AtomicU32::new(root.0),
            height: AtomicU32::new(height),
            len: AtomicU64::new(len),
            read_retries: AtomicU64::new(0),
            version_conflicts: AtomicU64::new(0),
        }
    }

    /// Open a write section: the sequence becomes odd. Must be paired
    /// with [`Self::end_write`]; sections do not nest (the tree's public
    /// mutators are the only callers).
    pub fn begin_write(&self) {
        let s = self.seq.fetch_add(1, Ordering::AcqRel);
        debug_assert!(s.is_multiple_of(2), "write sections must not nest");
    }

    /// Close a write section, publishing the post-mutation metadata
    /// before the sequence becomes even again.
    pub fn end_write(&self, root: PageId, height: u32, len: u64) {
        self.root.store(root.0, Ordering::Release);
        self.height.store(height, Ordering::Release);
        self.len.store(len, Ordering::Release);
        let s = self.seq.fetch_add(1, Ordering::Release);
        debug_assert!(s % 2 == 1, "end_write without begin_write");
    }

    /// Publish metadata outside a write section (tree construction and
    /// bulk loading, before the tree is shared with any reader).
    pub fn publish(&self, root: PageId, height: u32, len: u64) {
        self.root.store(root.0, Ordering::Release);
        self.height.store(height, Ordering::Release);
        self.len.store(len, Ordering::Release);
    }

    /// Current sequence value (possibly odd).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Wait (bounded spin) for an even sequence; `None` if the writer
    /// never leaves its section within the spin budget.
    pub fn stable_seq(&self) -> Option<u64> {
        for i in 0..STABLE_SPINS {
            let s = self.seq.load(Ordering::Acquire);
            if s.is_multiple_of(2) {
                return Some(s);
            }
            if i % 64 == 63 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        None
    }

    /// Published root page. Meaningful when sampled under an even,
    /// validated sequence.
    #[inline]
    pub fn root(&self) -> PageId {
        PageId(self.root.load(Ordering::Acquire))
    }

    /// Published height. Same validity caveat as [`Self::root`].
    #[inline]
    pub fn height(&self) -> u32 {
        self.height.load(Ordering::Acquire)
    }

    /// Published record count. Same validity caveat as [`Self::root`].
    #[inline]
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True iff no records are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count one performed-but-discarded node read.
    #[inline]
    pub fn note_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one conflict event surfaced to a caller.
    #[inline]
    pub fn note_conflict(&self) {
        self.version_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the optimistic-read counters.
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            read_retries: self.read_retries.load(Ordering::Relaxed),
            version_conflicts: self.version_conflicts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_section_toggles_parity_and_publishes() {
        let e = TreeEpoch::new(PageId(1), 1, 0);
        assert_eq!(e.stable_seq(), Some(0));
        e.begin_write();
        assert_eq!(e.seq() % 2, 1);
        e.end_write(PageId(9), 3, 42);
        assert_eq!(e.seq(), 2);
        assert_eq!(e.root(), PageId(9));
        assert_eq!(e.height(), 3);
        assert_eq!(e.len(), 42);
    }

    #[test]
    fn stable_seq_gives_up_on_stuck_writer() {
        let e = TreeEpoch::new(PageId(0), 1, 0);
        e.begin_write();
        assert_eq!(e.stable_seq(), None, "odd sequence must not stabilize");
    }

    #[test]
    fn counters_accumulate() {
        let e = TreeEpoch::new(PageId(0), 1, 0);
        e.note_retry();
        e.note_retry();
        e.note_conflict();
        let s = e.stats();
        assert_eq!(s.read_retries, 2);
        assert_eq!(s.version_conflicts, 1);
        let later = e.stats() - s;
        assert_eq!(later, EpochStats::default());
    }
}
