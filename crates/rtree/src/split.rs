//! Node split algorithms: Guttman's linear and quadratic heuristics.
//!
//! A split partitions the keys of an overflowing node (capacity + 1
//! entries) into two groups, each holding at least `min_fill` entries.
//! The tree layer then assigns page ids per the paper's §4.1 same-path
//! rule: whichever group contains the cascading new entry receives the
//! *freshly allocated* page, so every node created by a cascading split
//! chain lies on a single root-to-leaf path.

use crate::traits::Key;

/// Which split heuristic to use on node overflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Guttman's linear split: seeds by greatest normalized separation,
    /// remaining entries assigned by least enlargement in input order.
    Linear,
    /// Guttman's quadratic split: seeds by greatest dead-space pairing,
    /// remaining entries assigned by greatest enlargement difference.
    #[default]
    Quadratic,
    /// R*-tree split (Beckmann et al., cited as \[2\] in the paper): choose
    /// the split axis by minimum total margin over all sorted
    /// distributions, then the distribution with minimal overlap (ties:
    /// minimal total volume).
    RStar,
}

/// Result of a split: index sets of the two groups (disjoint, covering
/// `0..keys.len()`).
#[derive(Debug)]
pub struct SplitResult {
    /// Indices of the first group.
    pub a: Vec<usize>,
    /// Indices of the second group.
    pub b: Vec<usize>,
}

/// Partition `keys` into two groups of at least `min_fill` entries each.
///
/// `keys.len()` must be at least `2 * min_fill` and at least 2.
pub fn split<K: Key>(policy: SplitPolicy, keys: &[K], min_fill: usize) -> SplitResult {
    assert!(keys.len() >= 2, "cannot split fewer than two entries");
    assert!(
        keys.len() >= 2 * min_fill,
        "cannot satisfy min_fill {} with {} entries",
        min_fill,
        keys.len()
    );
    match policy {
        SplitPolicy::Linear => {
            let (a, b) = linear_seeds(keys);
            distribute(keys, a, b, min_fill, policy)
        }
        SplitPolicy::Quadratic => {
            let (a, b) = quadratic_seeds(keys);
            distribute(keys, a, b, min_fill, policy)
        }
        SplitPolicy::RStar => rstar_split(keys, min_fill),
    }
}

/// R*-tree split: for every axis, sort by lower then by upper bound and
/// consider every legal split position; pick the axis with the smallest
/// summed margin, then the position with the least overlap between the
/// two groups (ties broken by total volume).
fn rstar_split<K: Key>(keys: &[K], min_fill: usize) -> SplitResult {
    let n = keys.len();
    let mut best: Option<(Vec<usize>, Vec<usize>)> = None;
    let mut best_axis_margin = f64::INFINITY;
    #[allow(unused_assignments)]
    let mut best_overlap = f64::INFINITY;
    #[allow(unused_assignments)]
    let mut best_volume = f64::INFINITY;

    for axis in 0..K::AXES {
        for sort_by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&i, &j| {
                let (a, b) = if sort_by_upper {
                    (keys[i].axis_hi(axis), keys[j].axis_hi(axis))
                } else {
                    (keys[i].axis_lo(axis), keys[j].axis_lo(axis))
                };
                a.total_cmp(&b)
            });
            // Evaluate the axis's total margin across all distributions,
            // and remember each distribution's overlap/volume.
            let mut axis_margin = 0.0;
            let mut candidates = Vec::new();
            for split_at in min_fill..=(n - min_fill) {
                let (g1, g2) = order.split_at(split_at);
                let c1 = g1.iter().fold(K::empty(), |acc, &i| acc.cover(&keys[i]));
                let c2 = g2.iter().fold(K::empty(), |acc, &i| acc.cover(&keys[i]));
                axis_margin += c1.margin() + c2.margin();
                let overlap = if c1.overlaps(&c2) {
                    // Volume of the intersection; approximate via the
                    // cover identity vol(c1∩c2) not being exposed — use
                    // enlargement-free computation through cover.
                    intersection_volume(&c1, &c2)
                } else {
                    0.0
                };
                candidates.push((
                    overlap,
                    c1.volume() + c2.volume(),
                    g1.to_vec(),
                    g2.to_vec(),
                ));
            }
            if axis_margin < best_axis_margin {
                best_axis_margin = axis_margin;
                // Reset the per-axis winners: the chosen axis dictates
                // which candidate list we pick from.
                best_overlap = f64::INFINITY;
                best_volume = f64::INFINITY;
                for (overlap, volume, a, b) in candidates {
                    if overlap < best_overlap
                        || (overlap == best_overlap && volume < best_volume)
                    {
                        best_overlap = overlap;
                        best_volume = volume;
                        best = Some((a, b));
                    }
                }
            }
        }
    }
    let (a, b) = best.expect("at least one distribution exists");
    SplitResult { a, b }
}

/// Volume of the intersection of two keys, computed from per-axis bounds.
fn intersection_volume<K: Key>(a: &K, b: &K) -> f64 {
    let mut v = 1.0;
    for axis in 0..K::AXES {
        let lo = a.axis_lo(axis).max(b.axis_lo(axis));
        let hi = a.axis_hi(axis).min(b.axis_hi(axis));
        if hi <= lo {
            return 0.0;
        }
        v *= hi - lo;
    }
    v
}

/// Guttman's PickSeeds (quadratic): the pair wasting the most area.
fn quadratic_seeds<K: Key>(keys: &[K]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_waste = f64::NEG_INFINITY;
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            let waste = keys[i].cover(&keys[j]).volume() - keys[i].volume() - keys[j].volume();
            if waste > best_waste {
                best_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Guttman's LinearPickSeeds: greatest separation normalized by the total
/// extent, over all axes.
fn linear_seeds<K: Key>(keys: &[K]) -> (usize, usize) {
    let axes = K::AXES;
    let mut best = (0, 1);
    let mut best_sep = f64::NEG_INFINITY;
    for axis in 0..axes {
        // Entry with the highest low side and entry with the lowest high side.
        let (mut hi_lo_idx, mut lo_hi_idx) = (0, 0);
        let (mut total_lo, mut total_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, k) in keys.iter().enumerate() {
            if k.axis_lo(axis) > keys[hi_lo_idx].axis_lo(axis) {
                hi_lo_idx = i;
            }
            if k.axis_hi(axis) < keys[lo_hi_idx].axis_hi(axis) {
                lo_hi_idx = i;
            }
            total_lo = total_lo.min(k.axis_lo(axis));
            total_hi = total_hi.max(k.axis_hi(axis));
        }
        let width = total_hi - total_lo;
        if width <= 0.0 || hi_lo_idx == lo_hi_idx {
            continue;
        }
        let sep =
            (keys[hi_lo_idx].axis_lo(axis) - keys[lo_hi_idx].axis_hi(axis)) / width;
        if sep > best_sep {
            best_sep = sep;
            best = (lo_hi_idx, hi_lo_idx);
        }
    }
    if best.0 == best.1 {
        // Degenerate (all identical): fall back to the first two entries.
        best = (0, 1);
    }
    best
}

fn distribute<K: Key>(
    keys: &[K],
    seed_a: usize,
    seed_b: usize,
    min_fill: usize,
    policy: SplitPolicy,
) -> SplitResult {
    let n = keys.len();
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut cover_a = keys[seed_a];
    let mut cover_b = keys[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while !remaining.is_empty() {
        // If one group must take everything left to reach min_fill, do so.
        if group_a.len() + remaining.len() == min_fill {
            group_a.append(&mut remaining);
            break;
        }
        if group_b.len() + remaining.len() == min_fill {
            group_b.append(&mut remaining);
            break;
        }
        // Choose the next entry to place.
        let pick = match policy {
            SplitPolicy::Quadratic => {
                // PickNext: entry with the greatest |d_a − d_b| preference.
                let mut best_pos = 0;
                let mut best_diff = f64::NEG_INFINITY;
                for (pos, &i) in remaining.iter().enumerate() {
                    let da = cover_a.enlargement(&keys[i]);
                    let db = cover_b.enlargement(&keys[i]);
                    let diff = (da - db).abs();
                    if diff > best_diff {
                        best_diff = diff;
                        best_pos = pos;
                    }
                }
                remaining.swap_remove(best_pos)
            }
            SplitPolicy::Linear => remaining.pop().expect("checked non-empty"),
            SplitPolicy::RStar => unreachable!("R* uses rstar_split, not distribute"),
        };
        // Assign to the group needing least enlargement; ties by smaller
        // volume, then by fewer entries (Guttman's tie-breaking).
        let da = cover_a.enlargement(&keys[pick]);
        let db = cover_b.enlargement(&keys[pick]);
        let to_a = match da.partial_cmp(&db) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => match cover_a.volume().partial_cmp(&cover_b.volume()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            cover_a = cover_a.cover(&keys[pick]);
            group_a.push(pick);
        } else {
            cover_b = cover_b.cover(&keys[pick]);
            group_b.push(pick);
        }
    }
    SplitResult {
        a: group_a,
        b: group_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkit::{Interval, Rect, StBox};

    type K = StBox<2, 1>;

    fn key(x0: f64, y0: f64, x1: f64, y1: f64) -> K {
        StBox::new(
            Rect::from_corners([x0, y0], [x1, y1]),
            Rect::new([Interval::new(0.0, 1.0)]),
        )
    }

    fn check_partition(r: &SplitResult, n: usize, min_fill: usize) {
        assert!(r.a.len() >= min_fill, "group a below min fill");
        assert!(r.b.len() >= min_fill, "group b below min fill");
        let mut all: Vec<usize> = r.a.iter().chain(r.b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition");
    }

    fn clustered_keys() -> Vec<K> {
        // Two obvious clusters far apart.
        let mut keys = Vec::new();
        for i in 0..5 {
            let o = i as f64 * 0.1;
            keys.push(key(o, o, o + 1.0, o + 1.0));
        }
        for i in 0..5 {
            let o = 100.0 + i as f64 * 0.1;
            keys.push(key(o, o, o + 1.0, o + 1.0));
        }
        keys
    }

    #[test]
    fn quadratic_separates_clusters() {
        let keys = clustered_keys();
        let r = split(SplitPolicy::Quadratic, &keys, 2);
        check_partition(&r, keys.len(), 2);
        // Each group must be one cluster (indices 0..5 vs 5..10).
        let a_low = r.a.iter().all(|&i| i < 5) || r.a.iter().all(|&i| i >= 5);
        assert!(a_low, "quadratic split mixed the clusters: {r:?}");
        assert_eq!(r.a.len(), 5);
        assert_eq!(r.b.len(), 5);
    }

    #[test]
    fn linear_separates_clusters() {
        let keys = clustered_keys();
        let r = split(SplitPolicy::Linear, &keys, 2);
        check_partition(&r, keys.len(), 2);
        let pure = r.a.iter().all(|&i| i < 5) || r.a.iter().all(|&i| i >= 5);
        assert!(pure, "linear split mixed the clusters: {r:?}");
    }

    #[test]
    fn min_fill_respected_with_outlier() {
        // One far outlier, min_fill forces companions to join it.
        let mut keys = vec![key(1000.0, 1000.0, 1001.0, 1001.0)];
        for i in 0..9 {
            let o = i as f64;
            keys.push(key(o, 0.0, o + 0.5, 0.5));
        }
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStar,
        ] {
            let r = split(policy, &keys, 4);
            check_partition(&r, keys.len(), 4);
        }
    }

    #[test]
    fn identical_keys_still_partition() {
        let keys = vec![key(0.0, 0.0, 1.0, 1.0); 6];
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::RStar,
        ] {
            let r = split(policy, &keys, 3);
            check_partition(&r, 6, 3);
            assert_eq!(r.a.len(), 3);
            assert_eq!(r.b.len(), 3);
        }
    }

    #[test]
    fn rstar_separates_clusters() {
        let keys = clustered_keys();
        let r = split(SplitPolicy::RStar, &keys, 2);
        check_partition(&r, keys.len(), 2);
        let pure = r.a.iter().all(|&i| i < 5) || r.a.iter().all(|&i| i >= 5);
        assert!(pure, "R* split mixed the clusters: {r:?}");
        // Clusters are disjoint: the chosen distribution has zero overlap.
        let cov = |idx: &[usize]| {
            idx.iter()
                .fold(StBox::<2, 1>::EMPTY, |acc, &i| acc.cover(&keys[i]))
        };
        assert!(!cov(&r.a).overlaps(&cov(&r.b)));
    }

    #[test]
    fn rstar_prefers_low_overlap_distribution() {
        // Three groups along x; a 2/8 split at min_fill=2 would overlap
        // more than the balanced 5/5 cluster split.
        let mut keys = Vec::new();
        for i in 0..5 {
            keys.push(key(i as f64, 0.0, i as f64 + 0.9, 1.0));
        }
        for i in 0..5 {
            keys.push(key(50.0 + i as f64, 0.0, 50.9 + i as f64, 1.0));
        }
        let r = split(SplitPolicy::RStar, &keys, 2);
        assert_eq!(r.a.len().min(r.b.len()), 5, "balanced split expected");
    }

    #[test]
    fn two_entries_split_into_singletons() {
        let keys = vec![key(0.0, 0.0, 1.0, 1.0), key(5.0, 5.0, 6.0, 6.0)];
        let r = split(SplitPolicy::Quadratic, &keys, 1);
        check_partition(&r, 2, 1);
    }

    #[test]
    #[should_panic(expected = "min_fill")]
    fn impossible_min_fill_panics() {
        let keys = vec![key(0.0, 0.0, 1.0, 1.0); 3];
        let _ = split(SplitPolicy::Quadratic, &keys, 2);
    }
}
