//! On-page node representation and (de)serialization.
//!
//! One node occupies exactly one page. Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x5254 ("RT")
//! 2       1     node kind: 0 = leaf, 1 = internal
//! 3       1     reserved
//! 4       4     entry count (u32)
//! 8       8     modification timestamp (f64) — §4.2 update management
//! 16      4     level (u32): 0 at leaves, increasing towards the root
//! 20      12    reserved
//! 32      …     entries
//! ```
//!
//! Internal entries are `key ‖ child-page-id(u32)`; leaf entries are
//! encoded records. With 4 KiB pages, 2-d NSI keys (24 B) and 32-byte
//! segment records this yields the paper's fanout: 145 internal, 127 leaf.

use crate::traits::{Key, Record};
use std::marker::PhantomData;
use storage::{PageId, PageRef};

/// Size of the fixed node header, in bytes.
pub const NODE_HEADER_LEN: usize = 32;

const MAGIC: u16 = 0x5254;
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// Entries of a node: child pointers with bounding keys, or data records.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeEntries<K, R> {
    /// An internal node's `(bounding key, child page)` entries.
    Internal(Vec<(K, PageId)>),
    /// A leaf node's data records.
    Leaf(Vec<R>),
}

/// An R-tree node decoded into memory.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<K, R> {
    /// Height above the leaf level (0 = leaf).
    pub level: u32,
    /// Logical time of the last modification of this node (insertion path
    /// stamping, §4.2). `-∞` for never-modified bulk-loaded nodes.
    pub timestamp: f64,
    /// The node's entries.
    pub entries: NodeEntries<K, R>,
}

impl<K: Key, R: Record<Key = K>> Node<K, R> {
    /// A fresh empty leaf.
    pub fn empty_leaf() -> Self {
        Node {
            level: 0,
            timestamp: f64::NEG_INFINITY,
            entries: NodeEntries::Leaf(Vec::new()),
        }
    }

    /// A fresh internal node at `level` (≥ 1).
    pub fn internal(level: u32, entries: Vec<(K, PageId)>) -> Self {
        debug_assert!(level >= 1);
        Node {
            level,
            timestamp: f64::NEG_INFINITY,
            entries: NodeEntries::Internal(entries),
        }
    }

    /// True iff this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.entries {
            NodeEntries::Internal(v) => v.len(),
            NodeEntries::Leaf(v) => v.len(),
        }
    }

    /// True iff the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum bounding key over all entries (empty key for empty nodes).
    pub fn bounding_key(&self) -> K {
        match &self.entries {
            NodeEntries::Internal(v) => v
                .iter()
                .fold(K::empty(), |acc, (k, _)| acc.cover(k)),
            NodeEntries::Leaf(v) => v
                .iter()
                .fold(K::empty(), |acc, r| acc.cover(&r.key())),
        }
    }

    /// Maximum number of entries that fit a page of `page_size` bytes for
    /// this node's kind.
    pub fn capacity(&self, page_size: usize) -> usize {
        if self.is_leaf() {
            Self::leaf_capacity(page_size)
        } else {
            Self::internal_capacity(page_size)
        }
    }

    /// Leaf fanout for a given page size.
    pub fn leaf_capacity(page_size: usize) -> usize {
        (page_size - NODE_HEADER_LEN) / R::ENCODED_LEN
    }

    /// Internal fanout for a given page size.
    pub fn internal_capacity(page_size: usize) -> usize {
        (page_size - NODE_HEADER_LEN) / (K::ENCODED_LEN + 4)
    }

    /// Serialize into a page image of at most `page_size` bytes.
    ///
    /// Panics if the node exceeds its capacity — callers split first.
    pub fn serialize(&self, page_size: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(page_size);
        self.serialize_into(&mut buf, page_size);
        buf
    }

    /// Serialize into a caller-provided buffer (cleared first), so the hot
    /// write path can reuse one allocation across calls.
    ///
    /// Panics if the node exceeds its capacity — callers split first.
    pub fn serialize_into(&self, buf: &mut Vec<u8>, page_size: usize) {
        assert!(
            self.len() <= self.capacity(page_size),
            "node overflow: {} entries > capacity {}",
            self.len(),
            self.capacity(page_size)
        );
        buf.clear();
        buf.reserve(page_size);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(if self.is_leaf() { KIND_LEAF } else { KIND_INTERNAL });
        buf.push(0);
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.timestamp.to_le_bytes());
        buf.extend_from_slice(&self.level.to_le_bytes());
        buf.resize(NODE_HEADER_LEN, 0);
        match &self.entries {
            NodeEntries::Internal(v) => {
                for (k, child) in v {
                    k.encode(buf);
                    buf.extend_from_slice(&child.0.to_le_bytes());
                }
            }
            NodeEntries::Leaf(v) => {
                for r in v {
                    r.encode(buf);
                }
            }
        }
        debug_assert!(buf.len() <= page_size);
    }

    /// Decode a node from a page image. (Materializes entry `Vec`s; the
    /// read path should prefer [`NodeView`] / [`NodeRef`].)
    pub fn deserialize(buf: &[u8]) -> Self {
        NodeView::parse(buf).to_node()
    }

    /// Internal entries, panicking on leaves (programming error).
    pub fn internal_entries(&self) -> &[(K, PageId)] {
        match &self.entries {
            NodeEntries::Internal(v) => v,
            NodeEntries::Leaf(_) => panic!("expected internal node"),
        }
    }

    /// Leaf records, panicking on internal nodes (programming error).
    pub fn leaf_records(&self) -> &[R] {
        match &self.entries {
            NodeEntries::Leaf(v) => v,
            NodeEntries::Internal(_) => panic!("expected leaf node"),
        }
    }
}

/// A borrowed, zero-copy view of an on-page node.
///
/// Parses the 32-byte header once; entries are decoded lazily, straight
/// out of the page bytes, as the iterators advance — no entry `Vec` is
/// ever built. This is the node representation of the read path; the
/// write path (insert/split/delete) keeps using the owned [`Node`].
#[derive(Clone, Copy)]
pub struct NodeView<'a, K, R> {
    /// Entry region of the page (header stripped).
    entries: &'a [u8],
    leaf: bool,
    count: usize,
    timestamp: f64,
    level: u32,
    _marker: PhantomData<fn() -> (K, R)>,
}

impl<'a, K: Key, R: Record<Key = K>> NodeView<'a, K, R> {
    /// Parse the header of a page image. Panics on a corrupt page, like
    /// [`Node::deserialize`].
    pub fn parse(buf: &'a [u8]) -> Self {
        let magic = u16::from_le_bytes(buf[0..2].try_into().unwrap());
        assert_eq!(magic, MAGIC, "not an R-tree node page");
        let leaf = match buf[2] {
            KIND_LEAF => true,
            KIND_INTERNAL => false,
            other => panic!("corrupt node kind byte {other}"),
        };
        let count = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        let timestamp = f64::from_le_bytes(buf[8..16].try_into().unwrap());
        let level = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let stride = if leaf {
            R::ENCODED_LEN
        } else {
            K::ENCODED_LEN + 4
        };
        NodeView {
            entries: &buf[NODE_HEADER_LEN..NODE_HEADER_LEN + count * stride],
            leaf,
            count,
            timestamp,
            level,
            _marker: PhantomData,
        }
    }

    /// True iff this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Height above the leaf level (0 = leaf).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Logical time of the node's last modification (§4.2).
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True iff the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Lazily decoded `(bounding key, child page)` entries. Panics on
    /// leaves (programming error).
    pub fn internal_entries(&self) -> InternalEntries<'a, K> {
        assert!(!self.leaf, "expected internal node");
        InternalEntries {
            buf: self.entries,
            remaining: self.count,
            _marker: PhantomData,
        }
    }

    /// Random access to one internal entry (fixed stride — O(1)).
    pub fn internal_entry(&self, i: usize) -> (K, PageId) {
        assert!(!self.leaf, "expected internal node");
        assert!(i < self.count, "entry index out of range");
        let stride = K::ENCODED_LEN + 4;
        let at = &self.entries[i * stride..(i + 1) * stride];
        let k = K::decode(&at[..K::ENCODED_LEN]);
        let child = PageId(u32::from_le_bytes(
            at[K::ENCODED_LEN..].try_into().unwrap(),
        ));
        (k, child)
    }

    /// Lazily decoded leaf records. Panics on internal nodes.
    pub fn leaf_records(&self) -> LeafRecords<'a, R> {
        assert!(self.leaf, "expected leaf node");
        LeafRecords {
            buf: self.entries,
            remaining: self.count,
            _marker: PhantomData,
        }
    }

    /// Minimum bounding key over all entries (empty key for empty nodes).
    pub fn bounding_key(&self) -> K {
        if self.leaf {
            self.leaf_records()
                .fold(K::empty(), |acc, r| acc.cover(&r.key()))
        } else {
            self.internal_entries()
                .fold(K::empty(), |acc, (k, _)| acc.cover(&k))
        }
    }

    /// Materialize an owned [`Node`] (the write path's representation).
    pub fn to_node(&self) -> Node<K, R> {
        let entries = if self.leaf {
            NodeEntries::Leaf(self.leaf_records().collect())
        } else {
            NodeEntries::Internal(self.internal_entries().collect())
        };
        Node {
            level: self.level,
            timestamp: self.timestamp,
            entries,
        }
    }
}

/// Lazy iterator over an internal node's `(key, child)` entries.
pub struct InternalEntries<'a, K> {
    buf: &'a [u8],
    remaining: usize,
    _marker: PhantomData<fn() -> K>,
}

impl<K: Key> Iterator for InternalEntries<'_, K> {
    type Item = (K, PageId);

    fn next(&mut self) -> Option<(K, PageId)> {
        if self.remaining == 0 {
            return None;
        }
        let k = K::decode(&self.buf[..K::ENCODED_LEN]);
        let child = PageId(u32::from_le_bytes(
            self.buf[K::ENCODED_LEN..K::ENCODED_LEN + 4].try_into().unwrap(),
        ));
        self.buf = &self.buf[K::ENCODED_LEN + 4..];
        self.remaining -= 1;
        Some((k, child))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K: Key> ExactSizeIterator for InternalEntries<'_, K> {}

/// Lazy iterator over a leaf node's records.
pub struct LeafRecords<'a, R> {
    buf: &'a [u8],
    remaining: usize,
    _marker: PhantomData<fn() -> R>,
}

impl<R: Record> Iterator for LeafRecords<'_, R> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        if self.remaining == 0 {
            return None;
        }
        let r = R::decode(&self.buf[..R::ENCODED_LEN]);
        self.buf = &self.buf[R::ENCODED_LEN..];
        self.remaining -= 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<R: Record> ExactSizeIterator for LeafRecords<'_, R> {}

/// An owned zero-copy node handle: a [`storage::PageRef`] plus the parsed
/// header.
///
/// `NodeView` borrows page bytes, so it can't be returned from a method
/// that reads the page; `NodeRef` owns the refcounted bytes (keeping them
/// alive across eviction) and hands out views on demand.
pub struct NodeRef<K, R> {
    bytes: PageRef,
    leaf: bool,
    count: usize,
    timestamp: f64,
    level: u32,
    _marker: PhantomData<fn() -> (K, R)>,
}

impl<K: Key, R: Record<Key = K>> NodeRef<K, R> {
    /// Parse the header of `bytes` once, taking ownership of the handle.
    pub fn parse(bytes: PageRef) -> Self {
        let v: NodeView<'_, K, R> = NodeView::parse(&bytes);
        let (leaf, count, timestamp, level) = (v.leaf, v.count, v.timestamp, v.level);
        NodeRef {
            bytes,
            leaf,
            count,
            timestamp,
            level,
            _marker: PhantomData,
        }
    }

    /// Borrow the underlying page as a [`NodeView`].
    pub fn view(&self) -> NodeView<'_, K, R> {
        let stride = if self.leaf {
            R::ENCODED_LEN
        } else {
            K::ENCODED_LEN + 4
        };
        NodeView {
            entries: &self.bytes[NODE_HEADER_LEN..NODE_HEADER_LEN + self.count * stride],
            leaf: self.leaf,
            count: self.count,
            timestamp: self.timestamp,
            level: self.level,
            _marker: PhantomData,
        }
    }

    /// True iff this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Height above the leaf level (0 = leaf).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Logical time of the node's last modification (§4.2).
    pub fn timestamp(&self) -> f64 {
        self.timestamp
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True iff the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Lazily decoded internal entries. Panics on leaves.
    pub fn internal_entries(&self) -> InternalEntries<'_, K> {
        self.view().internal_entries()
    }

    /// Random access to one internal entry.
    pub fn internal_entry(&self, i: usize) -> (K, PageId) {
        self.view().internal_entry(i)
    }

    /// Lazily decoded leaf records. Panics on internal nodes.
    pub fn leaf_records(&self) -> LeafRecords<'_, R> {
        self.view().leaf_records()
    }

    /// Minimum bounding key over all entries.
    pub fn bounding_key(&self) -> K {
        self.view().bounding_key()
    }

    /// Materialize an owned [`Node`] for mutation.
    pub fn to_node(&self) -> Node<K, R> {
        self.view().to_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::NsiSegmentRecord;
    use stkit::{Interval, StBox};

    type R = NsiSegmentRecord<2>;
    type K = StBox<2, 1>;
    type N = Node<K, R>;

    fn rec(oid: u32, x: f64) -> R {
        R::new(oid, 0, Interval::new(0.0, 1.0), [x, 0.0], [x + 1.0, 1.0])
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = N::empty_leaf();
        n.timestamp = 17.5;
        if let NodeEntries::Leaf(v) = &mut n.entries {
            v.push(rec(1, 0.0));
            v.push(rec(2, 5.0));
        }
        let page = n.serialize(4096);
        assert!(page.len() <= 4096);
        let back = N::deserialize(&page);
        assert_eq!(back, n);
        assert_eq!(back.level, 0);
        assert_eq!(back.timestamp, 17.5);
        assert_eq!(back.leaf_records().len(), 2);
    }

    #[test]
    fn internal_roundtrip() {
        let k1 = rec(1, 0.0).key();
        let k2 = rec(2, 5.0).key();
        let mut n = N::internal(2, vec![(k1, PageId(7)), (k2, PageId(9))]);
        n.timestamp = -3.25;
        let page = n.serialize(4096);
        let back = N::deserialize(&page);
        assert_eq!(back, n);
        assert_eq!(back.internal_entries()[1].1, PageId(9));
    }

    #[test]
    fn capacities_match_paper() {
        assert_eq!(N::leaf_capacity(4096), 127);
        assert_eq!(N::internal_capacity(4096), 145);
    }

    #[test]
    fn bounding_key_covers_entries() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            v.push(rec(1, 0.0));
            v.push(rec(2, 5.0));
        }
        let bk = n.bounding_key();
        assert!(bk.contains(&rec(1, 0.0).key()));
        assert!(bk.contains(&rec(2, 5.0).key()));
        assert!(N::empty_leaf().bounding_key().is_empty());
    }

    #[test]
    #[should_panic(expected = "node overflow")]
    fn oversized_node_panics() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..200 {
                v.push(rec(i, i as f64));
            }
        }
        n.serialize(4096);
    }

    #[test]
    #[should_panic(expected = "not an R-tree node")]
    fn garbage_page_rejected() {
        let buf = vec![0u8; 4096];
        let _ = N::deserialize(&buf);
    }

    #[test]
    fn full_leaf_fits_exactly() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..127 {
                v.push(rec(i, i as f64));
            }
        }
        let page = n.serialize(4096);
        assert!(page.len() <= 4096);
        assert_eq!(N::deserialize(&page).len(), 127);
    }
}
