//! On-page node representation and (de)serialization.
//!
//! One node occupies exactly one page. Layout (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x5254 ("RT")
//! 2       1     node kind: 0 = leaf, 1 = internal
//! 3       1     reserved
//! 4       4     entry count (u32)
//! 8       8     modification timestamp (f64) — §4.2 update management
//! 16      4     level (u32): 0 at leaves, increasing towards the root
//! 20      12    reserved
//! 32      …     entries
//! ```
//!
//! Internal entries are `key ‖ child-page-id(u32)`; leaf entries are
//! encoded records. With 4 KiB pages, 2-d NSI keys (24 B) and 32-byte
//! segment records this yields the paper's fanout: 145 internal, 127 leaf.

use crate::traits::{Key, Record};
use storage::PageId;

/// Size of the fixed node header, in bytes.
pub const NODE_HEADER_LEN: usize = 32;

const MAGIC: u16 = 0x5254;
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

/// Entries of a node: child pointers with bounding keys, or data records.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeEntries<K, R> {
    /// An internal node's `(bounding key, child page)` entries.
    Internal(Vec<(K, PageId)>),
    /// A leaf node's data records.
    Leaf(Vec<R>),
}

/// An R-tree node decoded into memory.
#[derive(Clone, Debug, PartialEq)]
pub struct Node<K, R> {
    /// Height above the leaf level (0 = leaf).
    pub level: u32,
    /// Logical time of the last modification of this node (insertion path
    /// stamping, §4.2). `-∞` for never-modified bulk-loaded nodes.
    pub timestamp: f64,
    /// The node's entries.
    pub entries: NodeEntries<K, R>,
}

impl<K: Key, R: Record<Key = K>> Node<K, R> {
    /// A fresh empty leaf.
    pub fn empty_leaf() -> Self {
        Node {
            level: 0,
            timestamp: f64::NEG_INFINITY,
            entries: NodeEntries::Leaf(Vec::new()),
        }
    }

    /// A fresh internal node at `level` (≥ 1).
    pub fn internal(level: u32, entries: Vec<(K, PageId)>) -> Self {
        debug_assert!(level >= 1);
        Node {
            level,
            timestamp: f64::NEG_INFINITY,
            entries: NodeEntries::Internal(entries),
        }
    }

    /// True iff this is a leaf node.
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.entries {
            NodeEntries::Internal(v) => v.len(),
            NodeEntries::Leaf(v) => v.len(),
        }
    }

    /// True iff the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimum bounding key over all entries (empty key for empty nodes).
    pub fn bounding_key(&self) -> K {
        match &self.entries {
            NodeEntries::Internal(v) => v
                .iter()
                .fold(K::empty(), |acc, (k, _)| acc.cover(k)),
            NodeEntries::Leaf(v) => v
                .iter()
                .fold(K::empty(), |acc, r| acc.cover(&r.key())),
        }
    }

    /// Maximum number of entries that fit a page of `page_size` bytes for
    /// this node's kind.
    pub fn capacity(&self, page_size: usize) -> usize {
        if self.is_leaf() {
            Self::leaf_capacity(page_size)
        } else {
            Self::internal_capacity(page_size)
        }
    }

    /// Leaf fanout for a given page size.
    pub fn leaf_capacity(page_size: usize) -> usize {
        (page_size - NODE_HEADER_LEN) / R::ENCODED_LEN
    }

    /// Internal fanout for a given page size.
    pub fn internal_capacity(page_size: usize) -> usize {
        (page_size - NODE_HEADER_LEN) / (K::ENCODED_LEN + 4)
    }

    /// Serialize into a page image of at most `page_size` bytes.
    ///
    /// Panics if the node exceeds its capacity — callers split first.
    pub fn serialize(&self, page_size: usize) -> Vec<u8> {
        assert!(
            self.len() <= self.capacity(page_size),
            "node overflow: {} entries > capacity {}",
            self.len(),
            self.capacity(page_size)
        );
        let mut buf = Vec::with_capacity(page_size);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(if self.is_leaf() { KIND_LEAF } else { KIND_INTERNAL });
        buf.push(0);
        buf.extend_from_slice(&(self.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.timestamp.to_le_bytes());
        buf.extend_from_slice(&self.level.to_le_bytes());
        buf.resize(NODE_HEADER_LEN, 0);
        match &self.entries {
            NodeEntries::Internal(v) => {
                for (k, child) in v {
                    k.encode(&mut buf);
                    buf.extend_from_slice(&child.0.to_le_bytes());
                }
            }
            NodeEntries::Leaf(v) => {
                for r in v {
                    r.encode(&mut buf);
                }
            }
        }
        debug_assert!(buf.len() <= page_size);
        buf
    }

    /// Decode a node from a page image.
    pub fn deserialize(buf: &[u8]) -> Self {
        let magic = u16::from_le_bytes(buf[0..2].try_into().unwrap());
        assert_eq!(magic, MAGIC, "not an R-tree node page");
        let kind = buf[2];
        let count = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        let timestamp = f64::from_le_bytes(buf[8..16].try_into().unwrap());
        let level = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let mut off = NODE_HEADER_LEN;
        let entries = match kind {
            KIND_LEAF => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(R::decode(&buf[off..off + R::ENCODED_LEN]));
                    off += R::ENCODED_LEN;
                }
                NodeEntries::Leaf(v)
            }
            KIND_INTERNAL => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = K::decode(&buf[off..off + K::ENCODED_LEN]);
                    off += K::ENCODED_LEN;
                    let child =
                        PageId(u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
                    off += 4;
                    v.push((k, child));
                }
                NodeEntries::Internal(v)
            }
            other => panic!("corrupt node kind byte {other}"),
        };
        Node {
            level,
            timestamp,
            entries,
        }
    }

    /// Internal entries, panicking on leaves (programming error).
    pub fn internal_entries(&self) -> &[(K, PageId)] {
        match &self.entries {
            NodeEntries::Internal(v) => v,
            NodeEntries::Leaf(_) => panic!("expected internal node"),
        }
    }

    /// Leaf records, panicking on internal nodes (programming error).
    pub fn leaf_records(&self) -> &[R] {
        match &self.entries {
            NodeEntries::Leaf(v) => v,
            NodeEntries::Internal(_) => panic!("expected leaf node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::NsiSegmentRecord;
    use stkit::{Interval, StBox};

    type R = NsiSegmentRecord<2>;
    type K = StBox<2, 1>;
    type N = Node<K, R>;

    fn rec(oid: u32, x: f64) -> R {
        R::new(oid, 0, Interval::new(0.0, 1.0), [x, 0.0], [x + 1.0, 1.0])
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = N::empty_leaf();
        n.timestamp = 17.5;
        if let NodeEntries::Leaf(v) = &mut n.entries {
            v.push(rec(1, 0.0));
            v.push(rec(2, 5.0));
        }
        let page = n.serialize(4096);
        assert!(page.len() <= 4096);
        let back = N::deserialize(&page);
        assert_eq!(back, n);
        assert_eq!(back.level, 0);
        assert_eq!(back.timestamp, 17.5);
        assert_eq!(back.leaf_records().len(), 2);
    }

    #[test]
    fn internal_roundtrip() {
        let k1 = rec(1, 0.0).key();
        let k2 = rec(2, 5.0).key();
        let mut n = N::internal(2, vec![(k1, PageId(7)), (k2, PageId(9))]);
        n.timestamp = -3.25;
        let page = n.serialize(4096);
        let back = N::deserialize(&page);
        assert_eq!(back, n);
        assert_eq!(back.internal_entries()[1].1, PageId(9));
    }

    #[test]
    fn capacities_match_paper() {
        assert_eq!(N::leaf_capacity(4096), 127);
        assert_eq!(N::internal_capacity(4096), 145);
    }

    #[test]
    fn bounding_key_covers_entries() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            v.push(rec(1, 0.0));
            v.push(rec(2, 5.0));
        }
        let bk = n.bounding_key();
        assert!(bk.contains(&rec(1, 0.0).key()));
        assert!(bk.contains(&rec(2, 5.0).key()));
        assert!(N::empty_leaf().bounding_key().is_empty());
    }

    #[test]
    #[should_panic(expected = "node overflow")]
    fn oversized_node_panics() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..200 {
                v.push(rec(i, i as f64));
            }
        }
        n.serialize(4096);
    }

    #[test]
    #[should_panic(expected = "not an R-tree node")]
    fn garbage_page_rejected() {
        let buf = vec![0u8; 4096];
        let _ = N::deserialize(&buf);
    }

    #[test]
    fn full_leaf_fits_exactly() {
        let mut n = N::empty_leaf();
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..127 {
                v.push(rec(i, i as f64));
            }
        }
        let page = n.serialize(4096);
        assert!(page.len() <= 4096);
        assert_eq!(N::deserialize(&page).len(), 127);
    }
}
