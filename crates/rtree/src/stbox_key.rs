//! [`Key`] implementation for [`stkit::StBox`] with outward-rounding `f32`
//! page encoding.

use crate::traits::Key;
use stkit::{Interval, Rect, StBox};

/// Narrow a lower bound to `f32`, rounding towards −∞ so the decoded box
/// can only grow.
#[inline]
pub fn f32_down(x: f64) -> f32 {
    let y = x as f32;
    if (y as f64) > x {
        y.next_down()
    } else {
        y
    }
}

/// Narrow an upper bound to `f32`, rounding towards +∞ so the decoded box
/// can only grow.
#[inline]
pub fn f32_up(x: f64) -> f32 {
    let y = x as f32;
    if (y as f64) < x {
        y.next_up()
    } else {
        y
    }
}

/// Quantize an arbitrary coordinate to the on-page precision (`f32`,
/// round-to-nearest). Data ingested through this function round-trips the
/// page encoding exactly.
#[inline]
pub fn quantize(x: f64) -> f64 {
    (x as f32) as f64
}

fn encode_interval_lo_hi(iv: &Interval, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&f32_down(iv.lo).to_le_bytes());
    buf.extend_from_slice(&f32_up(iv.hi).to_le_bytes());
}

fn decode_interval(buf: &[u8]) -> Interval {
    let lo = f32::from_le_bytes(buf[0..4].try_into().unwrap()) as f64;
    let hi = f32::from_le_bytes(buf[4..8].try_into().unwrap()) as f64;
    Interval::new(lo, hi)
}

impl<const D: usize, const T: usize> Key for StBox<D, T> {
    const ENCODED_LEN: usize = (D + T) * 8;
    const AXES: usize = D + T;

    fn empty() -> Self {
        StBox::EMPTY
    }

    fn is_empty(&self) -> bool {
        StBox::is_empty(self)
    }

    fn cover(&self, other: &Self) -> Self {
        StBox::cover(self, other)
    }

    fn intersect(&self, other: &Self) -> Self {
        StBox::intersect(self, other)
    }

    fn overlaps(&self, other: &Self) -> bool {
        StBox::overlaps(self, other)
    }

    fn contains(&self, other: &Self) -> bool {
        StBox::contains(self, other)
    }

    fn volume(&self) -> f64 {
        StBox::volume(self)
    }

    fn margin(&self) -> f64 {
        StBox::margin(self)
    }

    fn enlargement(&self, other: &Self) -> f64 {
        StBox::enlargement(self, other)
    }

    fn axis_lo(&self, axis: usize) -> f64 {
        if axis < D {
            self.space.extent(axis).lo
        } else {
            self.time.extent(axis - D).lo
        }
    }

    fn axis_hi(&self, axis: usize) -> f64 {
        if axis < D {
            self.space.extent(axis).hi
        } else {
            self.time.extent(axis - D).hi
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for i in 0..D {
            encode_interval_lo_hi(&self.space.extent(i), buf);
        }
        for i in 0..T {
            encode_interval_lo_hi(&self.time.extent(i), buf);
        }
    }

    fn decode(buf: &[u8]) -> Self {
        let mut space = [Interval::EMPTY; D];
        let mut time = [Interval::EMPTY; T];
        let mut off = 0;
        for s in space.iter_mut() {
            *s = decode_interval(&buf[off..off + 8]);
            off += 8;
        }
        for t in time.iter_mut() {
            *t = decode_interval(&buf[off..off + 8]);
            off += 8;
        }
        StBox::new(Rect::new(space), Rect::new(time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Nsi2 = StBox<2, 1>;

    fn sample() -> Nsi2 {
        StBox::new(
            Rect::from_corners([1.0, 2.0], [3.0, 4.0]),
            Rect::new([Interval::new(5.0, 6.0)]),
        )
    }

    #[test]
    fn encoded_len_matches() {
        let mut buf = Vec::new();
        sample().encode(&mut buf);
        assert_eq!(buf.len(), <Nsi2 as Key>::ENCODED_LEN);
        assert_eq!(<Nsi2 as Key>::ENCODED_LEN, 24);
        assert_eq!(<StBox<2, 2> as Key>::ENCODED_LEN, 32);
    }

    #[test]
    fn roundtrip_exact_for_f32_values() {
        let b = sample();
        let mut buf = Vec::new();
        b.encode(&mut buf);
        assert_eq!(Nsi2::decode(&buf), b);
    }

    #[test]
    fn narrowing_rounds_outward() {
        // A value not representable in f32: the decoded box must contain it.
        let x = 0.1f64 + 1e-12;
        let b: Nsi2 = StBox::new(
            Rect::from_corners([x, x], [x, x]),
            Rect::new([Interval::point(x)]),
        );
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let d = Nsi2::decode(&buf);
        assert!(d.space.contains_point(&[x, x]));
        assert!(d.time.extent(0).contains(x));
        assert!(d.contains(&b));
    }

    #[test]
    fn rounding_helpers() {
        for &x in &[0.1, -0.1, 1.0e30, -1.0e30, 0.0, 123.456] {
            assert!((f32_down(x) as f64) <= x, "down({x})");
            assert!((f32_up(x) as f64) >= x, "up({x})");
        }
        // Exact f32 values pass through unchanged.
        assert_eq!(f32_down(1.5), 1.5f32);
        assert_eq!(f32_up(1.5), 1.5f32);
        assert_eq!(quantize(1.5), 1.5);
    }

    #[test]
    fn infinities_survive_encoding() {
        let b: Nsi2 = StBox::new(
            Rect::from_corners([f64::NEG_INFINITY, 0.0], [f64::INFINITY, 1.0]),
            Rect::new([Interval::new(0.0, f64::INFINITY)]),
        );
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let d = Nsi2::decode(&buf);
        assert_eq!(d.space.extent(0).lo, f64::NEG_INFINITY);
        assert_eq!(d.space.extent(0).hi, f64::INFINITY);
        assert_eq!(d.time.extent(0).hi, f64::INFINITY);
    }

    #[test]
    fn center_spans_space_then_time() {
        let b = sample();
        assert_eq!(Key::center(&b, 0), 2.0);
        assert_eq!(Key::center(&b, 1), 3.0);
        assert_eq!(Key::center(&b, 2), 5.5);
        assert_eq!(<Nsi2 as Key>::AXES, 3);
    }
}
