//! Range search — the building block of snapshot queries and the paper's
//! *naive* baseline.
//!
//! The tree descends into every child whose bounding key overlaps the
//! query key (`R ≬ Q`, §3.2); at the leaf level an `accept` predicate is
//! applied to the *record* so callers can use the exact segment-vs-query
//! test instead of the record's bounding box (the optimization of \[13\],
//! \[14, 15\] discussed in §3.2 — toggleable for the ablation bench).

use crate::traits::{Key, Record};
use crate::tree::RTree;
use storage::PageStore;

/// Cost counters for one search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes loaded (= disk accesses).
    pub nodes_visited: u64,
    /// Of those, leaf nodes.
    pub leaf_nodes_visited: u64,
    /// Key/record comparisons — the paper's "distance computations"
    /// CPU metric (§5): one per child examined.
    pub comparisons: u64,
    /// Records emitted.
    pub results: u64,
}

impl std::ops::AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.nodes_visited += rhs.nodes_visited;
        self.leaf_nodes_visited += rhs.leaf_nodes_visited;
        self.comparisons += rhs.comparisons;
        self.results += rhs.results;
    }
}

/// A range query over the tree's key space.
#[derive(Clone, Copy, Debug)]
pub struct RangeQuery<K> {
    /// The query box.
    pub key: K,
}

impl<R: Record, S: PageStore> RTree<R, S> {
    /// Range search: emit every record whose key overlaps `query` *and*
    /// that passes `accept` (the exact geometric test). Uses an explicit
    /// stack; every node load is one disk access.
    pub fn range_search(
        &self,
        query: &R::Key,
        mut accept: impl FnMut(&R) -> bool,
        mut emit: impl FnMut(&R),
    ) -> SearchStats {
        let mut stats = SearchStats::default();
        if query.is_empty() {
            return stats;
        }
        let mut stack = vec![self.root_page()];
        while let Some(page) = stack.pop() {
            // Zero-copy visit: entries decode lazily out of the page bytes.
            let node = self.read_node(page);
            stats.nodes_visited += 1;
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                for r in node.leaf_records() {
                    stats.comparisons += 1;
                    if r.key().overlaps(query) && accept(&r) {
                        stats.results += 1;
                        emit(&r);
                    }
                }
            } else {
                for (k, child) in node.internal_entries() {
                    stats.comparisons += 1;
                    if k.overlaps(query) {
                        stack.push(child);
                    }
                }
            }
        }
        stats
    }

    /// Convenience: collect all accepted records.
    pub fn range_collect(
        &self,
        query: &R::Key,
        accept: impl FnMut(&R) -> bool,
    ) -> (Vec<R>, SearchStats) {
        let mut out = Vec::new();
        let stats = self.range_search(query, accept, |r| out.push(*r));
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use crate::bulk::bulk_load;
    use crate::records::NsiSegmentRecord;
    use crate::tree::{RTree, RTreeConfig};
    use storage::{PageStore, Pager};
    use stkit::{Interval, Rect, StBox};

    type R = NsiSegmentRecord<2>;
    type K = StBox<2, 1>;

    fn query(x: (f64, f64), y: (f64, f64), t: (f64, f64)) -> K {
        StBox::new(
            Rect::from_corners([x.0, y.0], [x.1, y.1]),
            Rect::new([Interval::new(t.0, t.1)]),
        )
    }

    /// A grid of stationary unit segments, one per integer cell.
    fn grid_records(n: usize) -> Vec<R> {
        (0..n * n)
            .map(|i| {
                let x = (i % n) as f64;
                let y = (i / n) as f64;
                R::new(
                    i as u32,
                    0,
                    Interval::new(0.0, 10.0),
                    [x + 0.25, y + 0.25],
                    [x + 0.75, y + 0.75],
                )
            })
            .collect()
    }

    fn build(records: Vec<R>) -> RTree<R, Pager> {
        bulk_load(Pager::new(), RTreeConfig::default(), records)
    }

    #[test]
    fn finds_expected_grid_cells() {
        let tree = build(grid_records(30));
        // Query covering cells x ∈ [10, 12], y ∈ [20, 21] fully.
        let q = query((10.0, 13.0), (20.0, 22.0), (0.0, 10.0));
        let (hits, stats) = tree.range_collect(&q, |_| true);
        assert_eq!(hits.len(), 6, "3×2 cells expected");
        assert_eq!(stats.results, 6);
        assert!(stats.nodes_visited >= 1);
        for r in &hits {
            let c = r.seg.x0;
            assert!((10.0..13.0).contains(&c[0]));
            assert!((20.0..22.0).contains(&c[1]));
        }
    }

    #[test]
    fn temporal_restriction_excludes() {
        let tree = build(grid_records(10));
        let q = query((0.0, 10.0), (0.0, 10.0), (20.0, 30.0));
        let (hits, _) = tree.range_collect(&q, |_| true);
        assert!(hits.is_empty(), "all segments end at t=10");
    }

    #[test]
    fn empty_query_is_free() {
        let tree = build(grid_records(10));
        let before = tree.store().io();
        let stats = tree.range_search(&K::EMPTY, |_| true, |_| {});
        assert_eq!(stats.nodes_visited, 0);
        assert_eq!((tree.store().io() - before).reads, 0);
    }

    #[test]
    fn accept_filter_rejects() {
        let tree = build(grid_records(10));
        let q = query((0.0, 10.0), (0.0, 10.0), (0.0, 10.0));
        let (hits, stats) = tree.range_collect(&q, |r| r.oid % 2 == 0);
        assert_eq!(hits.len(), 50);
        assert!(hits.iter().all(|r| r.oid % 2 == 0));
        assert_eq!(stats.results, 50);
    }

    #[test]
    fn exact_segment_test_rejects_bbox_false_positive() {
        // Diagonal mover whose bbox covers the whole square; query sits in
        // the off-diagonal corner.
        let diag = R::new(0, 0, Interval::new(0.0, 10.0), [0.0, 0.0], [10.0, 10.0]);
        let tree = build(vec![diag]);
        let q = query((8.0, 10.0), (0.0, 2.0), (0.0, 10.0));
        // Without the exact test: false admission.
        let (naive, _) = tree.range_collect(&q, |_| true);
        assert_eq!(naive.len(), 1);
        // With the exact test (§3.2): rejected.
        let (exact, _) = tree.range_collect(&q, |r| {
            !r.seg
                .intersect_query(&q.space, &q.time.extent(0))
                .is_empty()
        });
        assert!(exact.is_empty());
    }

    #[test]
    fn io_matches_nodes_visited() {
        let tree = build(grid_records(40));
        let before = tree.store().io();
        let q = query((0.0, 5.0), (0.0, 5.0), (0.0, 10.0));
        let stats = tree.range_search(&q, |_| true, |_| {});
        let delta = tree.store().io() - before;
        assert_eq!(delta.reads, stats.nodes_visited);
        assert_eq!(delta.writes, 0);
    }

    #[test]
    fn search_after_incremental_inserts() {
        let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
        for r in grid_records(20) {
            tree.insert(r, 0.0);
        }
        tree.validate().unwrap();
        let q = query((5.0, 7.0), (5.0, 7.0), (0.0, 10.0));
        let (hits, _) = tree.range_collect(&q, |_| true);
        assert_eq!(hits.len(), 4, "2×2 cells");
    }
}

impl<R: Record, S: PageStore> RTree<R, S> {
    /// Visit every record in the tree (full scan, in node order). Returns
    /// the number of records visited; each node load is one disk access.
    pub fn scan(&self, mut visit: impl FnMut(&R)) -> u64 {
        let mut n = 0;
        let mut stack = vec![self.root_page()];
        while let Some(page) = stack.pop() {
            let node = self.read_node(page);
            if node.is_leaf() {
                for r in node.leaf_records() {
                    visit(&r);
                    n += 1;
                }
            } else {
                for (_, child) in node.internal_entries() {
                    stack.push(child);
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod scan_tests {
    use crate::bulk::bulk_load;
    use crate::records::NsiSegmentRecord;
    use crate::tree::RTreeConfig;
    use storage::Pager;
    use stkit::Interval;

    #[test]
    fn scan_visits_every_record_once() {
        let recs: Vec<NsiSegmentRecord<2>> = (0..1000)
            .map(|i| {
                let x = (i % 40) as f64;
                let y = (i / 40) as f64;
                NsiSegmentRecord::new(i, 0, Interval::new(0.0, 1.0), [x, y], [x + 1.0, y])
            })
            .collect();
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), recs);
        let mut seen = std::collections::HashSet::new();
        let n = tree.scan(|r| {
            assert!(seen.insert(r.oid), "record {} visited twice", r.oid);
        });
        assert_eq!(n, 1000);
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn scan_of_empty_tree() {
        let tree: crate::tree::RTree<NsiSegmentRecord<2>, Pager> =
            crate::tree::RTree::new(Pager::new(), RTreeConfig::default());
        assert_eq!(tree.scan(|_| {}), 0);
    }
}
