//! Leaf records for motion segments under both index layouts.
//!
//! §3.2: "at the leaf level of the index structure, actual motion segments
//! are represented via their end points, not their BBs" — so both record
//! types serialize the segment's validity interval and its two endpoint
//! positions (plus object id and update sequence number), and derive the
//! bounding key on demand.
//!
//! * [`NsiSegmentRecord`] — native space indexing: key is the space-time
//!   box `StBox<D, 1>` (§3.2).
//! * [`DtaSegmentRecord`] — double temporal axes: key is `StBox<D, 2>`
//!   with the validity endpoints on two independent axes (§4.2 Fig. 5(b)).
//!
//! For `D = 2` both records are 32 bytes, which on 4 KiB pages with a
//! 32-byte node header reproduces the paper's leaf fanout of 127.

use crate::stbox_key::quantize;
use crate::traits::Record;
use stkit::{Interval, MotionSegment, StBox};

/// Identifier of a mobile object.
pub type ObjectId = u32;

macro_rules! segment_record {
    ($(#[$doc:meta])* $name:ident, $taxes:literal, $keyfn:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq)]
        pub struct $name<const D: usize> {
            /// The motion segment (one update of one object).
            pub seg: MotionSegment<D>,
            /// Which object this motion belongs to.
            pub oid: ObjectId,
            /// Sequence number of the update within the object's history.
            pub seq: u32,
        }

        impl<const D: usize> $name<D> {
            /// Build a record, quantizing all coordinates to the on-page
            /// `f32` precision so the page encoding round-trips exactly.
            pub fn new(
                oid: ObjectId,
                seq: u32,
                t: Interval,
                from: [f64; D],
                to: [f64; D],
            ) -> Self {
                let t = Interval::new(quantize(t.lo), quantize(t.hi));
                let from = from.map(quantize);
                let to = to.map(quantize);
                $name {
                    seg: MotionSegment::from_endpoints(t, from, to),
                    oid,
                    seq,
                }
            }
        }

        impl<const D: usize> Record for $name<D> {
            type Key = StBox<D, $taxes>;

            // t_lo, t_hi + 2·D endpoint coords (f32) + oid + seq.
            const ENCODED_LEN: usize = 8 + 8 * D + 8;

            fn key(&self) -> Self::Key {
                self.seg.$keyfn()
            }

            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&(self.seg.t.lo as f32).to_le_bytes());
                buf.extend_from_slice(&(self.seg.t.hi as f32).to_le_bytes());
                let end = self.seg.end_position();
                for i in 0..D {
                    buf.extend_from_slice(&(self.seg.x0[i] as f32).to_le_bytes());
                }
                for i in 0..D {
                    buf.extend_from_slice(&(end[i] as f32).to_le_bytes());
                }
                buf.extend_from_slice(&self.oid.to_le_bytes());
                buf.extend_from_slice(&self.seq.to_le_bytes());
            }

            fn decode(buf: &[u8]) -> Self {
                let f = |o: usize| f32::from_le_bytes(buf[o..o + 4].try_into().unwrap()) as f64;
                let t = Interval::new(f(0), f(4));
                let mut from = [0.0; D];
                let mut to = [0.0; D];
                for i in 0..D {
                    from[i] = f(8 + 4 * i);
                    to[i] = f(8 + 4 * D + 4 * i);
                }
                let off = 8 + 8 * D;
                let oid = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
                let seq = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
                $name {
                    seg: MotionSegment::from_endpoints(t, from, to),
                    oid,
                    seq,
                }
            }
        }
    };
}

segment_record!(
    /// A motion segment indexed under native space indexing (NSI, §3.2):
    /// spatial bounding box × validity interval on one temporal axis.
    NsiSegmentRecord,
    1,
    nsi_box
);

segment_record!(
    /// A motion segment indexed under the double-temporal-axes layout of
    /// §4.2: spatial bounding box × the point `(t_l, t_h)` on independent
    /// start/end axes, enabling NPDQ discardability.
    DtaSegmentRecord,
    2,
    dta_box
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Key;

    fn rec(oid: u32) -> NsiSegmentRecord<2> {
        NsiSegmentRecord::new(
            oid,
            3,
            Interval::new(1.25, 2.5),
            [0.5, -1.5],
            [4.0, 2.0],
        )
    }

    #[test]
    fn encoded_len_matches_paper_fanout() {
        assert_eq!(<NsiSegmentRecord<2> as Record>::ENCODED_LEN, 32);
        assert_eq!(<DtaSegmentRecord<2> as Record>::ENCODED_LEN, 32);
        // 4096-byte page, 32-byte header ⇒ 127 leaf records (paper §5).
        assert_eq!((4096 - 32) / 32, 127);
        // Internal entry: 24-byte NSI key + 4-byte child ⇒ 145 (paper §5).
        assert_eq!((4096 - 32) / (<StBox<2, 1> as Key>::ENCODED_LEN + 4), 145);
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = rec(42);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), <NsiSegmentRecord<2> as Record>::ENCODED_LEN);
        assert_eq!(NsiSegmentRecord::<2>::decode(&buf), r);
    }

    #[test]
    fn roundtrip_exact_with_unrepresentable_input() {
        // 0.1 is not an f32 value; the constructor quantizes, so the
        // record equals its own page roundtrip.
        let r = NsiSegmentRecord::<2>::new(1, 0, Interval::new(0.1, 0.3), [0.1, 0.2], [0.7, 0.9]);
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(NsiSegmentRecord::<2>::decode(&buf), r);
    }

    #[test]
    fn keys_differ_between_layouts() {
        let n = NsiSegmentRecord::<2>::new(1, 0, Interval::new(2.0, 5.0), [0.0, 0.0], [3.0, 3.0]);
        let d = DtaSegmentRecord::<2>::new(1, 0, Interval::new(2.0, 5.0), [0.0, 0.0], [3.0, 3.0]);
        let nk = n.key();
        let dk = d.key();
        assert_eq!(nk.time.extent(0), Interval::new(2.0, 5.0));
        assert_eq!(dk.time.extent(0), Interval::point(2.0));
        assert_eq!(dk.time.extent(1), Interval::point(5.0));
        assert_eq!(nk.space, dk.space);
    }

    #[test]
    fn key_covers_trajectory() {
        let r = rec(7);
        let k = r.key();
        assert!(k.space.contains_point(&r.seg.x0));
        assert!(k.space.contains_point(&r.seg.end_position()));
    }

    #[test]
    fn dta_roundtrip() {
        let d = DtaSegmentRecord::<2>::new(9, 1, Interval::new(0.5, 1.5), [1.0, 2.0], [3.0, 4.0]);
        let mut buf = Vec::new();
        d.encode(&mut buf);
        assert_eq!(DtaSegmentRecord::<2>::decode(&buf), d);
    }
}
