//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The paper builds its index over ≈502 k motion segments before running
//! queries, at a 0.5 fill factor (§5). STR packs records into leaves by
//! recursively sorting on successive axes and tiling; upper levels are
//! packed the same way from the level below. With the paper's parameters
//! this yields exactly the reported height of 3.

use crate::node::{Node, NodeEntries};
use crate::traits::{Key, Record};
use crate::tree::{RTree, RTreeConfig};
use storage::{PageId, PageStore};

/// Build a tree from `records` by STR packing at `config.bulk_fill`.
pub fn bulk_load<R: Record, S: PageStore>(
    store: S,
    config: RTreeConfig,
    records: Vec<R>,
) -> RTree<R, S> {
    let len = records.len() as u64;
    let mut tree = RTree::new(store, config);
    if records.is_empty() {
        return tree;
    }

    let page_size = tree.store().page_size();
    let leaf_cap = Node::<R::Key, R>::leaf_capacity(page_size);
    let internal_cap = Node::<R::Key, R>::internal_capacity(page_size);
    let leaf_fill = effective_fill(leaf_cap, config.bulk_fill);
    let internal_fill = effective_fill(internal_cap, config.bulk_fill);

    // The initial empty-leaf root from RTree::new is recycled below.
    let spare_root = tree.root_page();
    tree.store().free(spare_root);

    // Pack leaves.
    let axes = match config.bulk_leading_axes {
        Some(k) => k.clamp(1, R::Key::AXES),
        None => R::Key::AXES,
    };
    let mut items: Vec<(R::Key, R)> = records.into_iter().map(|r| (r.key(), r)).collect();
    let tiles = str_tiles(&mut items, 0, axes, leaf_fill);
    let mut level_entries: Vec<(R::Key, PageId)> = Vec::with_capacity(tiles.len());
    for tile in tiles {
        let node = Node {
            level: 0,
            timestamp: f64::NEG_INFINITY,
            entries: NodeEntries::Leaf(tile.iter().map(|(_, r)| *r).collect()),
        };
        let page = tree.store().alloc();
        tree.store().write(page, &node.serialize(page_size));
        level_entries.push((node.bounding_key(), page));
    }

    // Pack upper levels until one node remains.
    let mut level = 0u32;
    while level_entries.len() > 1 {
        level += 1;
        type Keyed<K> = Vec<(K, (K, PageId))>;
        let mut items: Keyed<R::Key> = level_entries.iter().map(|e| (e.0, *e)).collect();
        let tiles = str_tiles(&mut items, 0, axes, internal_fill);
        let mut next: Vec<(R::Key, PageId)> = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let node = Node::<R::Key, R> {
                level,
                timestamp: f64::NEG_INFINITY,
                entries: NodeEntries::Internal(tile.iter().map(|(_, e)| *e).collect()),
            };
            let page = tree.store().alloc();
            tree.store().write(page, &node.serialize(page_size));
            next.push((node.bounding_key(), page));
        }
        level_entries = next;
    }

    let root = level_entries[0].1;
    tree.set_root(root, level + 1, len);
    tree
}

/// Number of entries to pack per node: `capacity · fill`, at least 1.
fn effective_fill(capacity: usize, fill: f64) -> usize {
    ((capacity as f64 * fill).floor() as usize).clamp(1, capacity)
}

/// Recursively tile `items` (sorted in place) into groups of ≤ `cap`,
/// sorting on `axis`, slicing into slabs, then recursing on the next axis.
fn str_tiles<K: Key, T: Copy>(
    items: &mut [(K, T)],
    axis: usize,
    axes: usize,
    cap: usize,
) -> Vec<Vec<(K, T)>> {
    if items.len() <= cap {
        return vec![items.to_vec()];
    }
    items.sort_by(|a, b| {
        a.0.center(axis)
            .partial_cmp(&b.0.center(axis))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if axis == axes - 1 {
        return items.chunks(cap).map(<[_]>::to_vec).collect();
    }
    // Number of tiles still needed, spread over the remaining axes.
    let tiles_needed = items.len().div_ceil(cap);
    let remaining_axes = axes - axis;
    let slabs = (tiles_needed as f64)
        .powf(1.0 / remaining_axes as f64)
        .ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));
    let mut out = Vec::new();
    for slab in items.chunks_mut(slab_size) {
        out.extend(str_tiles(slab, axis + 1, axes, cap));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::NsiSegmentRecord;
    use storage::Pager;
    use stkit::Interval;

    type R = NsiSegmentRecord<2>;

    fn records(n: usize) -> Vec<R> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                let t = (i % 50) as f64 * 0.1;
                R::new(
                    i as u32,
                    0,
                    Interval::new(t, t + 1.0),
                    [x, y],
                    [x + 0.5, y + 0.5],
                )
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), Vec::<R>::new());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn single_record() {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), records(1));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        tree.validate().unwrap();
    }

    #[test]
    fn one_leaf_worth() {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), records(63));
        assert_eq!(tree.height(), 1, "63 records fit one half-filled leaf");
        let inv = tree.validate().unwrap();
        assert_eq!(inv.records, 63);
    }

    #[test]
    fn multi_level_build() {
        let tree = bulk_load(Pager::new(), RTreeConfig::default(), records(10_000));
        assert_eq!(tree.len(), 10_000);
        let inv = tree.validate().unwrap();
        assert_eq!(inv.records, 10_000);
        // 10 000 / 63 ≈ 159 leaves → needs 3 levels at fill 72.
        assert_eq!(inv.height, 3);
        // Fill factor near the requested 0.5 · 127 = 63.
        let fill = inv.avg_leaf_fill();
        assert!((55.0..=63.5).contains(&fill), "leaf fill {fill}");
    }

    #[test]
    fn full_fill_build() {
        let cfg = RTreeConfig {
            bulk_fill: 1.0,
            ..RTreeConfig::default()
        };
        let tree = bulk_load(Pager::new(), cfg, records(1000));
        let inv = tree.validate().unwrap();
        // 1000 / 127 = 7.9 → 8 leaves, one root.
        assert_eq!(inv.nodes_per_level[0], 8);
        assert_eq!(inv.height, 2);
    }

    #[test]
    fn bulk_then_insert_coexist() {
        let mut tree = bulk_load(Pager::new(), RTreeConfig::default(), records(500));
        for i in 0..500 {
            let r = R::new(
                10_000 + i,
                0,
                Interval::new(0.0, 1.0),
                [i as f64 * 0.1, 50.0],
                [i as f64 * 0.1 + 1.0, 51.0],
            );
            tree.insert(r, i as f64);
        }
        assert_eq!(tree.len(), 1000);
        tree.validate().unwrap();
    }
}
