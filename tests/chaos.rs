//! Chaos suite: seeded fault schedules against a fault-free serial
//! oracle.
//!
//! The contract under test, layer by layer:
//!
//! - **Transient-only faults + pool retry** are invisible: the serve is
//!   bit-identical to the oracle, every participant finishes `Ok`, and
//!   the only evidence is non-zero retry counters (`chaos_a`).
//! - **Detected corruption** (checksum mismatch) has a blast radius of
//!   exactly the sessions whose queries touch the corrupt page; they
//!   degrade but keep serving, everyone else matches the oracle
//!   (`chaos_b`).
//! - **Undetected corruption** (no checksum layer, node magic destroyed)
//!   panics the session's engine; the panic is contained, the session is
//!   `Failed`, and the barrier protocol still runs the serve to
//!   completion (`chaos_c`).
//! - **A corrupt root** starves the writer: every insert is dropped and
//!   logged in `writer_outcome`, and the tree is untouched (`chaos_d`).
//! - **A crash at any point of the durable write path** recovers to
//!   exactly the committed-frame prefix, bit-identically for the
//!   single-tree server (`chaos_g`), even when the WAL tail is torn,
//!   truncated, or bit-flipped at every byte offset of its last record
//!   (`chaos_h`); a full device fails the writer cleanly while the WAL
//!   keeps the backlog recoverable (`chaos_i`); the partitioned server
//!   recovers result-equivalently through a rebuild (`chaos_j`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dq_repro::mobiquery::{
    DqServer, DurableImage, DurableLog, PartitionedDqServer, RegionGrid, SessionKind,
    SessionOutcome, SessionSpec, Trajectory,
};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig, TreeRead, TreeReadRetry};
use parking_lot::RwLock;
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{
    save_pager, ChecksumStore, FaultPlan, FaultyStore, PageId, PageStore, Pager, RetryPolicy,
    ShardedBufferPool, StorageError,
};

type R = NsiSegmentRecord<2>;

/// Objects on a line: oid `i` sits at `x = i + 0.5`, alive the whole run.
fn line_records(n: u32) -> Vec<R> {
    (0..n)
        .map(|i| {
            let x = f64::from(i) + 0.5;
            R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

fn build_tree<S: PageStore>(store: S, recs: &[R]) -> RTree<R, S> {
    let mut tree = RTree::new(store, RTreeConfig::default());
    for r in recs {
        tree.insert(*r, r.seg.t.lo);
    }
    tree
}

/// A window sliding right from `x0` at unit speed for `span` seconds.
fn slide_spec(kind: SessionKind, x0: f64, frames: usize, span: f64) -> SessionSpec<2> {
    SessionSpec {
        kind,
        trajectory: Trajectory::linear(
            Rect::from_corners([x0, 0.0], [x0 + 1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames)
            .map(|k| span * k as f64 / frames as f64)
            .collect(),
    }
}

/// The leaf page holding `oid` — found by a plain DFS over clean pages,
/// so call this *before* corrupting anything.
fn leaf_page_of<S: PageStore>(tree: &RTree<R, S>, oid: u32) -> PageId {
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page);
        if node.is_leaf() {
            if node.leaf_records().any(|r| r.oid == oid) {
                return page;
            }
        } else {
            for (_, child) in node.internal_entries() {
                stack.push(child);
            }
        }
    }
    panic!("oid {oid} not found in any leaf");
}

/// Per-frame insert batches dropping fresh objects along the line.
fn line_inserts(frames: usize, per_frame: u32) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = k as f64 * 0.3;
            (0..per_frame)
                .map(|j| {
                    let oid = 1000 + (k as u32) * per_frame + j;
                    let x = f64::from(oid % 37) + 0.25;
                    (R::new(oid, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]), t)
                })
                .collect()
        })
        .collect()
}

/// (a) Transient-only schedule, retry at the pool layer: the serve must
/// be bit-identical to a fault-free serial oracle — results, outcomes,
/// and writer tallies — while the fault and retry counters prove the
/// schedule actually fired.
#[test]
fn chaos_a_transient_faults_are_invisible_through_retry() {
    let recs = line_records(120);
    let specs = vec![
        slide_spec(SessionKind::Pdq, 0.0, 12, 12.0),
        slide_spec(SessionKind::Npdq, 30.0, 12, 12.0),
        slide_spec(SessionKind::Pdq, 60.0, 8, 12.0),
        slide_spec(SessionKind::Npdq, 90.0, 8, 12.0),
    ];
    let inserts = line_inserts(12, 2);

    // Small pages force a multi-node tree; a pool far smaller than the
    // tree forces device reads (and therefore fault exposure) all run.
    let faulty = FaultyStore::new(
        Pager::with_page_size(256),
        FaultPlan::transient(42, 0.05),
    );
    let pool = ShardedBufferPool::new(ChecksumStore::new(faulty), 8, 2).with_retry(RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_micros(1),
    });
    let server = DqServer::new(build_tree(pool, &recs));
    let report = server.serve(&specs, &inserts);

    let oracle = DqServer::new(build_tree(Pager::with_page_size(256), &recs))
        .serve_serial(&specs, &inserts);

    assert!(report.writer_outcome.is_ok(), "writer: {:?}", report.writer_outcome);
    assert_eq!(report.inserts_applied, oracle.inserts_applied);
    for (i, (got, want)) in report.sessions.iter().zip(&oracle.sessions).enumerate() {
        assert!(got.outcome.is_ok(), "session {i}: {:?}", got.outcome);
        assert_eq!(got.results, want.results, "session {i} diverged from oracle");
    }

    // The schedule fired and the pool absorbed it.
    let (transients, retries, exhausted, corrupt) = server.with_tree(|t| {
        let pool = t.store();
        let fs = pool.fault_stats();
        (
            pool.inner().inner().injected().transients,
            fs.retries,
            fs.exhausted,
            pool.inner().corrupt_detected(),
        )
    });
    assert!(transients > 0, "no transient fault ever injected");
    assert!(retries > 0, "the pool never retried");
    assert_eq!(exhausted, 0, "a retry budget was exhausted");
    assert_eq!(corrupt, 0, "no page was corrupted in this schedule");
}

/// (b) Checksum-detected corruption of one leaf: only the session whose
/// window reaches that leaf degrades; the untouched session is `Ok` and
/// bit-identical to the oracle.
#[test]
fn chaos_b_corruption_blast_radius_is_one_session() {
    let recs = line_records(40);
    // A sweeps x ∈ [0, 9]; B sweeps x ∈ [24, 33]. Disjoint by > one page.
    let specs = vec![
        slide_spec(SessionKind::Pdq, 0.0, 8, 8.0),
        slide_spec(SessionKind::Pdq, 24.0, 8, 8.0),
    ];

    let store = ChecksumStore::new(FaultyStore::new(
        Pager::with_page_size(256),
        FaultPlan::quiet(7),
    ));
    let tree = build_tree(store, &recs);
    let victim = leaf_page_of(&tree, 28); // x = 28.5: B's region only
    tree.store().inner().corrupt_page(victim);

    let server = DqServer::new(tree);
    let report = server.serve(&specs, &[]);
    let oracle =
        DqServer::new(build_tree(Pager::with_page_size(256), &recs)).serve_serial(&specs, &[]);

    // Session A never touches the corrupt leaf: clean and exact.
    assert!(report.sessions[0].outcome.is_ok(), "A: {:?}", report.sessions[0].outcome);
    assert_eq!(report.sessions[0].results, oracle.sessions[0].results);

    // Session B degrades: every recorded error is Corrupt on the victim
    // page, and the victim's records are the ones it cannot deliver.
    let b = &report.sessions[1];
    assert!(
        matches!(b.outcome, SessionOutcome::Degraded { .. }),
        "B should degrade, got {:?}",
        b.outcome
    );
    assert!(!b.outcome.errors().is_empty());
    for e in b.outcome.errors() {
        assert_eq!(*e, StorageError::Corrupt { page: victim });
    }
    assert!(
        !b.results.contains(&(28, 0)),
        "a record on the corrupt page was delivered"
    );
    assert!(oracle.sessions[1].results.contains(&(28, 0)));
    let delivered: std::collections::HashSet<_> = b.results.iter().copied().collect();
    for r in &b.results {
        assert!(
            oracle.sessions[1].results.contains(r),
            "B delivered {r:?} which the oracle never produced"
        );
    }
    assert!(
        delivered.len() < oracle.sessions[1].results.len(),
        "B cannot be complete with a corrupt leaf"
    );
}

/// (c) Corruption *below* the checksum layer that destroys the node
/// magic: the page parses fail-stop (panic), the panic is contained to
/// the session, and the serve still completes with every other session
/// clean. This is the layering argument for checksums — without them,
/// corruption costs the whole session instead of a degraded frame.
#[test]
fn chaos_c_undetected_corruption_panic_is_contained() {
    let recs = line_records(40);
    let specs = vec![
        slide_spec(SessionKind::Pdq, 0.0, 8, 8.0),
        slide_spec(SessionKind::Pdq, 24.0, 8, 8.0),
    ];

    // No ChecksumStore, and flip byte 0: the node header itself breaks.
    let store = FaultyStore::with_flipped_bytes(
        Pager::with_page_size(256),
        FaultPlan::quiet(7),
        vec![0],
    );
    let tree = build_tree(store, &recs);
    let victim = leaf_page_of(&tree, 28);
    tree.store().corrupt_page(victim);

    let server = DqServer::new(tree);
    let report = server.serve(&specs, &[]);
    let oracle =
        DqServer::new(build_tree(Pager::with_page_size(256), &recs)).serve_serial(&specs, &[]);

    assert!(report.sessions[0].outcome.is_ok(), "A: {:?}", report.sessions[0].outcome);
    assert_eq!(report.sessions[0].results, oracle.sessions[0].results);
    assert!(
        matches!(report.sessions[1].outcome, SessionOutcome::Failed(_)),
        "B should have died on the broken node header, got {:?}",
        report.sessions[1].outcome
    );
    // The run itself completed: every frame was served for A.
    assert_eq!(report.frames, 8);
    assert_eq!(report.sessions[0].frames.len(), 8);
}

/// (d) A corrupt root starves the writer: every insert descent fails
/// fail-stop, the records are dropped (and logged), and the tree is
/// left exactly as it was — no partial writes, no panic, no deadlock.
#[test]
fn chaos_d_corrupt_root_stops_the_writer_cleanly() {
    let recs = line_records(20);
    let store = ChecksumStore::new(FaultyStore::new(
        Pager::with_page_size(256),
        FaultPlan::quiet(3),
    ));
    let tree = build_tree(store, &recs);
    let root = tree.root_page();
    tree.store().inner().corrupt_page(root);

    let server: DqServer<2, _> = DqServer::new(tree);
    let inserts = line_inserts(3, 1);
    let report = server.serve(&[], &inserts);

    assert_eq!(report.inserts_applied, 0, "no insert can get past a corrupt root");
    assert_eq!(report.writer_outcome.errors().len(), 3);
    for e in report.writer_outcome.errors() {
        assert_eq!(*e, StorageError::Corrupt { page: root });
    }
    assert_eq!(report.writer_reads, 0, "failed reads must not count as device reads");
    assert_eq!(server.len(), 20, "the tree must be untouched");
}

/// (f) Fault-level retries and version-validation retries compose
/// without double-counting: optimistic readers descend through a faulty
/// pool while a writer mutates the tree, so a single node visit can be
/// retried at *both* layers — the pool re-reads the device on a
/// transient fault, and the epoch discards the visit on a version
/// conflict. The layering contract:
///
/// - The pool absorbs its layer exactly: with no budget exhausted,
///   every injected transient pairs with exactly one pool retry, and
///   none of the extra device attempts ever reach the node-read
///   counters (one logical read ticks the level counters once, however
///   many device attempts it took).
/// - The epoch absorbs its layer on top: delivered + version-retried
///   reads + the writer's deterministic read count equals the level
///   counters exactly — a fault retry is never misattributed as a
///   version retry or vice versa.
#[test]
fn chaos_f_fault_retries_compose_with_version_retries() {
    let recs = line_records(120);

    fn mover(j: u32) -> R {
        let oid = 1000 + j;
        let x = f64::from(oid % 37) + 0.25;
        R::new(oid, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
    }

    let faulty = FaultyStore::new(Pager::with_page_size(256), FaultPlan::transient(42, 0.05));
    let pool = ShardedBufferPool::new(ChecksumStore::new(faulty), 8, 2).with_retry(RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_micros(1),
    });
    let tree = build_tree(pool, &recs).map_store(Arc::new);
    let levels0 = tree.level_counters().snapshot();
    let epoch0 = tree.epoch_stats();
    let reader = tree.reader();
    let lock = RwLock::new(tree);

    // Delivered node visits across all optimistic attempts (a read that
    // validated stays delivered even if its snapshot later conflicts).
    let visits = AtomicU64::new(0);
    let scan = |view: &dyn TreeRead<R>| -> Result<(u64, Vec<u32>), StorageError> {
        let len = view.len();
        let mut ids = Vec::new();
        let mut stack = vec![view.root_page()];
        while let Some(page) = stack.pop() {
            let node = view.try_read_node(page)?;
            visits.fetch_add(1, Ordering::Relaxed);
            if node.is_leaf() {
                ids.extend(node.leaf_records().map(|r| r.oid));
            } else {
                stack.extend(node.internal_entries().map(|(_, c)| c));
            }
        }
        Ok((len, ids))
    };
    // Preloaded ids 0..119 plus the writer's contiguous 1000.. prefix.
    let check = |len: u64, mut ids: Vec<u32>| {
        ids.sort_unstable();
        assert_eq!(ids.len() as u64, len, "snapshot delivered a non-len id set");
        for (k, id) in ids.iter().enumerate() {
            let want = if k < 120 { k as u32 } else { 1000 + k as u32 - 120 };
            assert_eq!(*id, want, "torn snapshot under faults + conflicts");
        }
    };

    let stop = AtomicBool::new(false);
    let inserted = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            // At least BASE write sections, then keep going until both
            // retry layers have demonstrably fired (deadline-bounded).
            const BASE: u32 = 2_000;
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut j = 0;
            loop {
                lock.write().insert(mover(j), 0.0);
                j += 1;
                let (conflicted, faulted) = {
                    let t = lock.read();
                    let d = t.epoch_stats() - epoch0;
                    let fs = t.store().fault_stats();
                    (d.read_retries + d.version_conflicts > 0, fs.retries > 0)
                };
                if j >= BASE && ((conflicted && faulted) || Instant::now() > deadline) {
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
            j
        });
        for _ in 0..2 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    match reader.with_consistent(&scan) {
                        Ok((len, ids)) => check(len, ids),
                        Err(StorageError::Conflict { .. }) => {}
                        Err(e) => panic!("a transient fault leaked through the pool: {e}"),
                    }
                }
            });
        }
        writer.join().unwrap()
    });

    // Final agreement between the optimistic and locked paths.
    let (len_opt, ids_opt) = reader.with_consistent(&scan).unwrap();
    let tree = lock.read();
    let (len_locked, mut ids_locked) = scan(&*tree).unwrap();
    assert_eq!(len_opt, 120 + u64::from(inserted));
    assert_eq!(len_locked, len_opt);
    let mut sorted_opt = ids_opt;
    sorted_opt.sort_unstable();
    ids_locked.sort_unstable();
    assert_eq!(sorted_opt, ids_locked, "optimistic vs locked scan diverged");
    check(len_opt, sorted_opt);

    // Both retry layers fired, and the pool layer paired exactly: one
    // retry per injected transient, none exhausted, none misread as
    // corruption.
    let epoch = tree.epoch_stats() - epoch0;
    assert!(
        epoch.read_retries + epoch.version_conflicts > 0,
        "the writer never conflicted a reader — stress was vacuous"
    );
    let pool = tree.store();
    let fs = pool.fault_stats();
    let transients = pool.inner().inner().injected().transients;
    assert!(transients > 0, "no transient fault ever injected");
    assert_eq!(fs.exhausted, 0, "a retry budget was exhausted");
    assert_eq!(pool.inner().corrupt_detected(), 0);
    assert_eq!(
        fs.retries, transients,
        "pool retries must pair 1:1 with injected transients"
    );

    // The cross-layer identity: device-level retries never inflate the
    // node-read counters, and version-level retries account for every
    // discarded visit. The writer's logical reads are reproduced by a
    // fault-free replay of the same insert sequence.
    let mut replay = build_tree(Pager::with_page_size(256), &recs);
    let replay0 = replay.level_counters().snapshot();
    for j in 0..inserted {
        replay.insert(mover(j), 0.0);
    }
    let writer_reads = (replay.level_counters().snapshot() - replay0).total_reads();
    let levels = tree.level_counters().snapshot() - levels0;
    assert_eq!(
        levels.total_reads(),
        visits.load(Ordering::Relaxed) + epoch.read_retries + writer_reads,
        "level reads must equal delivered + version-retried + writer reads"
    );
}

/// `save_pager` bytes of a tree's store — the bit-identity yardstick.
fn pager_image<S: dq_repro::storage::SnapshotSource>(tree: &RTree<R, S>) -> Vec<u8> {
    let mut buf = Vec::new();
    save_pager(tree.store(), &mut buf).unwrap();
    buf
}

/// A fault-free tree that applied the first `frames` insert batches on
/// top of `recs` — the oracle every crash recovery is measured against.
fn oracle_tree(recs: &[R], inserts: &[Vec<(R, f64)>], frames: usize) -> RTree<R, Pager> {
    let mut tree = build_tree(Pager::with_page_size(256), recs);
    for batch in &inserts[..frames] {
        for (r, now) in batch {
            tree.insert(*r, *now);
        }
    }
    tree
}

/// (g) The crash-point matrix for the durable single-tree server: after
/// any number of served frames — including a crash *between* a frame's
/// WAL append and its tree apply — recovery reproduces a fault-free tree
/// that applied exactly the committed-frame prefix, bit-identically
/// (same pager image, same metadata). The checkpoint cadence of 3 puts
/// initial-checkpoint-only, post-checkpoint, and mid-interval crash
/// points all in the matrix.
#[test]
fn chaos_g_crash_points_recover_the_committed_prefix_bit_identically() {
    let recs = line_records(60);
    let frames = 6;
    let inserts = line_inserts(frames, 3);

    for crashed_at in 0..=frames {
        let log = Arc::new(DurableLog::new(3));
        let server = DqServer::new(build_tree(Pager::with_page_size(256), &recs))
            .with_durability(Arc::clone(&log));
        let report = server.serve_serial(&[], &inserts[..crashed_at]);
        assert!(report.writer_outcome.is_ok());
        assert_eq!(report.wal_appends, crashed_at as u64);

        // The crash lands between the next frame's group commit and its
        // first page write: the record is durable, the pages are not.
        let committed = if crashed_at < frames {
            log.commit_frame(crashed_at as u64, &inserts[crashed_at]);
            crashed_at + 1
        } else {
            crashed_at
        };

        let (recovered, rep) = log
            .durable_image()
            .recover_tree::<2>(RTreeConfig::default())
            .unwrap();
        assert!(rep.tail.is_clean(), "crash at {crashed_at}: {:?}", rep.tail);
        let oracle = oracle_tree(&recs, &inserts, committed);
        assert_eq!(
            recovered.metadata(),
            oracle.metadata(),
            "crash at {crashed_at}: metadata diverged"
        );
        assert_eq!(
            pager_image(&recovered),
            pager_image(&oracle),
            "crash at {crashed_at}: recovered pager image diverged"
        );
    }
}

/// (h) Tail damage at every byte offset of the WAL's last record —
/// truncation and bit flips — must land recovery on the last *complete*
/// group commit: the damaged frame is lost, every earlier frame is
/// intact, and the report's tail says clean only at the exact record
/// boundary.
#[test]
fn chaos_h_torn_and_corrupt_wal_tails_recover_the_last_complete_commit() {
    let recs = line_records(40);
    let inserts = line_inserts(4, 3);
    let log = Arc::new(DurableLog::new(0)); // initial checkpoint only
    let server = DqServer::new(build_tree(Pager::with_page_size(256), &recs))
        .with_durability(Arc::clone(&log));
    server.serve_serial(&[], &inserts[..3]);
    let prefix_len = log.durable_image().wal.len();
    // Frame 3 commits but never applies (crash mid-frame); its record is
    // the one the damage schedule mutilates.
    log.commit_frame(3, &inserts[3]);
    let full = log.durable_image();
    assert!(full.wal.len() > prefix_len);

    let oracle = oracle_tree(&recs, &inserts, 3);
    let oracle_img = pager_image(&oracle);
    let check = |img: DurableImage, want_clean: bool, what: String| {
        let (recovered, rep) = img.recover_tree::<2>(RTreeConfig::default()).unwrap();
        assert_eq!(rep.replayed_frames, 3, "{what}: wrong landing point");
        assert_eq!(
            rep.tail.is_clean(),
            want_clean,
            "{what}: tail was {:?}",
            rep.tail
        );
        assert_eq!(recovered.metadata(), oracle.metadata(), "{what}");
        assert_eq!(pager_image(&recovered), oracle_img, "{what}");
    };

    for cut in prefix_len..full.wal.len() {
        let mut img = full.clone();
        img.wal.truncate(cut);
        check(img, cut == prefix_len, format!("truncated at {cut}"));
    }
    for off in prefix_len..full.wal.len() {
        let mut img = full.clone();
        img.wal[off] ^= 0x40;
        check(img, false, format!("bit flip at {off}"));
    }
}

/// (i) A device that fills mid-run: the writer degrades to `Failed`
/// without panicking or zombifying the serve (every frame still runs,
/// sessions still read), it keeps group-committing every frame, and
/// recovery onto an uncapped device replays the whole backlog —
/// bit-identical to a fault-free run that never filled up.
#[test]
fn chaos_i_full_device_fails_writer_cleanly_and_wal_recovers_the_backlog() {
    let recs = line_records(30);
    let frames = 5;
    let inserts = line_inserts(frames, 4);

    // Cap the id space so the preload fits with two pages to spare: the
    // insert stream must hit `StorageError::Full` partway through.
    let probe = pager_image(&build_tree(Pager::with_page_size(256), &recs));
    let pages = u32::from_le_bytes(probe[12..16].try_into().unwrap());
    let capped = Pager::with_page_size(256).with_id_cap(pages + 2);

    let log = Arc::new(DurableLog::new(2));
    let server =
        DqServer::new(build_tree(capped, &recs)).with_durability(Arc::clone(&log));
    let specs = vec![slide_spec(SessionKind::Pdq, 0.0, frames, 5.0)];
    let report = server.serve(&specs, &inserts);

    assert!(
        matches!(report.writer_outcome, SessionOutcome::Failed(_)),
        "full device must fail the writer, got {:?}",
        report.writer_outcome
    );
    assert!(
        report.inserts_applied < frames * 4,
        "the cap never bit — the regression is vacuous"
    );
    assert_eq!(report.frames, frames, "a failed writer must not stall the serve");
    assert!(report.sessions[0].outcome.is_ok(), "readers outlive a full device");
    assert_eq!(
        report.wal_appends, frames as u64,
        "a failed writer must keep group-committing"
    );
    let stats = log.stats();
    assert_eq!(
        stats.checkpoints, 1,
        "only the initial checkpoint: truncating after the failure would drop the backlog"
    );

    let (recovered, rep) = log
        .durable_image()
        .recover_tree::<2>(RTreeConfig::default())
        .unwrap();
    assert_eq!(rep.replayed_frames, frames as u64);
    let oracle = oracle_tree(&recs, &inserts, frames);
    assert_eq!(recovered.metadata(), oracle.metadata());
    assert_eq!(pager_image(&recovered), pager_image(&oracle));
}

/// (j) Partitioned durability: one shared WAL over many region trees,
/// logical checkpoints of the deduplicated record set, and recovery by
/// rebuilding through [`PartitionedDqServer::build`] plus frame replay.
/// The recovered server holds exactly the crashed server's records
/// (including a frame committed but never applied), and serves identical
/// results.
#[test]
fn chaos_j_partitioned_recovery_is_result_equivalent() {
    let recs = line_records(120);
    let specs = vec![
        slide_spec(SessionKind::Pdq, 0.0, 12, 12.0),
        slide_spec(SessionKind::Npdq, 30.0, 12, 12.0),
    ];
    let inserts = line_inserts(12, 2);
    let grid = RegionGrid::from_cuts(0, vec![40.0, 80.0]);
    let make = |_: usize| RTree::new(Pager::with_page_size(256), RTreeConfig::default());

    let log = Arc::new(DurableLog::new(5));
    let server = PartitionedDqServer::build(grid.clone(), &recs, make)
        .with_durability(Arc::clone(&log));
    let report = server.serve(&specs, &inserts);
    assert!(report.base.writer_outcome.is_ok());
    assert_eq!(report.base.wal_appends, 12);
    assert!(
        report.base.checkpoints >= 1,
        "12 commits at every=5 must install mid-run checkpoints"
    );

    // Crash with one more frame durable but applied to no region; the
    // live server absorbs the same frame so the comparison target holds
    // the full committed prefix too.
    let extra = vec![(
        R::new(9000, 0, Interval::new(3.6, 100.0), [5.25, 0.5], [5.25, 0.5]),
        3.6,
    )];
    log.commit_frame(12, &extra);
    let image = log.durable_image();
    server.serve_serial(&[], std::slice::from_ref(&extra));

    let (base, frames, rep) = image.recover_records::<2>().unwrap();
    assert!(rep.tail.is_clean());
    assert_eq!(rep.replayed_frames, frames.len() as u64);
    assert_eq!(frames.last().expect("the extra frame is committed").0, 12);

    let recovered = PartitionedDqServer::build(grid, &base, make);
    let replayed: Vec<Vec<(R, f64)>> = frames.into_iter().map(|(_, b)| b).collect();
    recovered.serve_serial(&[], &replayed);

    // Same deduplicated record set...
    let collect = |srv: &PartitionedDqServer<2, Pager>| {
        let mut ids = std::collections::BTreeSet::new();
        for r in 0..srv.grid().len() {
            srv.with_region_tree(r, |t| {
                t.scan(|rec| {
                    ids.insert((rec.oid, rec.seq));
                })
            });
        }
        ids
    };
    assert_eq!(collect(&recovered), collect(&server));

    // ...and the same answers to a fresh identical query run.
    let requery = vec![
        slide_spec(SessionKind::Pdq, 0.0, 10, 10.0),
        slide_spec(SessionKind::Npdq, 20.0, 10, 10.0),
    ];
    let got = recovered.serve_serial(&requery, &[]);
    let want = server.serve_serial(&requery, &[]);
    for (i, (g, w)) in got.sessions.iter().zip(&want.sessions).enumerate() {
        assert!(g.outcome.is_ok(), "recovered session {i}: {:?}", g.outcome);
        assert_eq!(g.results, w.results, "session {i} diverged after recovery");
    }
}

/// (e) The partitioned server under the same transient-only schedule:
/// every region's pool absorbs its own fault stream, and the concurrent
/// multi-writer serve stays bit-identical to a fault-free partitioned
/// serial oracle — region by region and session by session.
#[test]
fn chaos_e_partitioned_transients_match_clean_partitioned_serial() {
    let recs = line_records(120);
    let specs = vec![
        slide_spec(SessionKind::Pdq, 0.0, 12, 12.0),
        slide_spec(SessionKind::Npdq, 30.0, 12, 12.0),
        slide_spec(SessionKind::Pdq, 60.0, 8, 12.0),
        slide_spec(SessionKind::Npdq, 90.0, 8, 12.0),
    ];
    let inserts = line_inserts(12, 2);
    let grid = RegionGrid::from_cuts(0, vec![40.0, 80.0]);

    let faulted = PartitionedDqServer::build(grid.clone(), &recs, |r| {
        let faulty = FaultyStore::new(
            Pager::with_page_size(256),
            FaultPlan::transient(42 + r as u64, 0.05),
        );
        let pool = ShardedBufferPool::new(ChecksumStore::new(faulty), 8, 2).with_retry(
            RetryPolicy {
                max_attempts: 8,
                base_backoff: Duration::from_micros(1),
            },
        );
        RTree::new(pool, RTreeConfig::default())
    });
    let report = faulted.serve(&specs, &inserts);

    let oracle = PartitionedDqServer::build(grid, &recs, |_| {
        RTree::new(Pager::with_page_size(256), RTreeConfig::default())
    })
    .serve_serial(&specs, &inserts);

    assert!(report.base.writer_outcome.is_ok(), "writers: {:?}", report.base.writer_outcome);
    assert_eq!(report.base.inserts_applied, oracle.base.inserts_applied);
    for r in 0..report.regions.len() {
        assert_eq!(
            report.regions[r].inserts_applied, oracle.regions[r].inserts_applied,
            "region {r} applied a different batch slice"
        );
    }
    for (i, (got, want)) in report.sessions.iter().zip(&oracle.sessions).enumerate() {
        assert!(got.outcome.is_ok(), "session {i}: {:?}", got.outcome);
        assert_eq!(got.results, want.results, "session {i} diverged from oracle");
    }

    // At least one region's schedule actually fired, and none leaked.
    let mut transients = 0;
    for r in 0..3 {
        let (t, exhausted) = faulted.with_region_tree(r, |tree| {
            let pool = tree.store();
            (pool.inner().inner().injected().transients, pool.fault_stats().exhausted)
        });
        transients += t;
        assert_eq!(exhausted, 0, "region {r} exhausted a retry budget");
    }
    assert!(transients > 0, "no transient fault ever injected");
}
