//! Persistence integration: build an index, persist the page store to a
//! byte stream (or file), reload, and query identically.

use dq_repro::mobiquery::{NaiveEngine, PdqEngine, SnapshotQuery, Trajectory};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::storage::{load_pager, save_pager};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::workload::{Dataset, DatasetConfig};

fn build() -> (Dataset, RTree<NsiSegmentRecord<2>, dq_repro::storage::Pager>) {
    let ds = Dataset::generate(DatasetConfig {
        objects: 300,
        duration: 10.0,
        space_side: 100.0,
        seed: 0x9E55,
    });
    let tree = ds.build_nsi_tree();
    (ds, tree)
}

#[test]
fn saved_tree_reloads_and_answers_identically() {
    let (_ds, tree) = build();
    let meta = tree.metadata();

    let mut bytes = Vec::new();
    save_pager(tree.store(), &mut bytes).unwrap();

    let pager = load_pager(&bytes[..]).unwrap();
    let reopened: RTree<NsiSegmentRecord<2>, _> =
        RTree::reopen(pager, RTreeConfig::default(), meta.0, meta.1, meta.2);
    reopened.validate().unwrap();
    assert_eq!(reopened.len(), tree.len());
    assert_eq!(reopened.height(), tree.height());

    let naive = NaiveEngine::new();
    for k in 0..10 {
        let q = SnapshotQuery::at_instant(
            Rect::from_corners([k as f64 * 8.0, 20.0], [k as f64 * 8.0 + 10.0, 35.0]),
            1.0 + k as f64 * 0.8,
        );
        let mut a: Vec<(u32, u32)> = Vec::new();
        let mut b: Vec<(u32, u32)> = Vec::new();
        naive.query_nsi(&tree, &q, |r| a.push((r.oid, r.seq)));
        naive.query_nsi(&reopened, &q, |r| b.push((r.oid, r.seq)));
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "query {k}");
    }
}

#[test]
fn reloaded_tree_supports_pdq_and_further_inserts() {
    let (_ds, tree) = build();
    let meta = tree.metadata();
    let mut bytes = Vec::new();
    save_pager(tree.store(), &mut bytes).unwrap();

    let mut reopened: RTree<NsiSegmentRecord<2>, _> = RTree::reopen(
        load_pager(&bytes[..]).unwrap(),
        RTreeConfig::default(),
        meta.0,
        meta.1,
        meta.2,
    );
    // Keep inserting after reload.
    for i in 0..200u32 {
        let x = (i % 50) as f64 * 2.0;
        reopened.insert(
            NsiSegmentRecord::new(5000 + i, 0, Interval::new(0.0, 10.0), [x, 50.0], [x, 50.0]),
            0.0,
        );
    }
    reopened.validate().unwrap();
    assert_eq!(reopened.len(), tree.len() + 200);

    // And run a dynamic query over it.
    let traj = Trajectory::linear(
        Rect::from_corners([0.0, 45.0], [10.0, 55.0]),
        [5.0, 0.0],
        Interval::new(0.0, 8.0),
        3,
    );
    let mut pdq = PdqEngine::start(&reopened, traj);
    let results = pdq.drain_window(&reopened, 0.0, 8.0);
    assert!(
        results.iter().filter(|r| r.record.oid >= 5000).count() > 10,
        "post-reload inserts must be visible to queries"
    );
}

#[test]
fn file_roundtrip() {
    let (_ds, tree) = build();
    let meta = tree.metadata();
    let path = std::env::temp_dir().join("dq_repro_persistence_test.dqpg");
    {
        let f = std::fs::File::create(&path).unwrap();
        save_pager(tree.store(), std::io::BufWriter::new(f)).unwrap();
    }
    let f = std::fs::File::open(&path).unwrap();
    let pager = load_pager(std::io::BufReader::new(f)).unwrap();
    let reopened: RTree<NsiSegmentRecord<2>, _> =
        RTree::reopen(pager, RTreeConfig::default(), meta.0, meta.1, meta.2);
    reopened.validate().unwrap();
    assert_eq!(reopened.len(), tree.len());
    let _ = std::fs::remove_file(&path);
}
