//! Region-partitioned serving: seam exactly-once semantics, determinism
//! against the serial protocol, and per-region reconciliation.
//!
//! The adversarial workload here puts objects and window edges *exactly
//! on* region boundaries: cuts sit at integer coordinates, objects sit
//! at every integer coordinate (so some sit on the cuts), and the query
//! window's edges cross the cuts exactly at frame times. Closed-slab
//! routing replicates each seam object into both touching regions, so
//! every lane sees it — the merge must still deliver each entry event
//! exactly once, in the same frame the unpartitioned server would.

use dq_repro::mobiquery::{
    DqServer, PartitionedDqServer, RegionGrid, SessionKind, SessionOutput, SessionSpec, Trajectory,
};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{PageStore, Pager, ShardedBufferPool};
use dq_repro::workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

type R = NsiSegmentRecord<2>;

/// One stationary object at every integer x in `0..=n` — including the
/// grid cuts themselves.
fn integer_line(n: u32) -> Vec<R> {
    (0..=n)
        .map(|i| {
            let x = f64::from(i);
            R::new(i, 0, Interval::new(0.0, 200.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

/// A unit window sliding right at unit speed: its edges sit exactly on
/// integer coordinates (and therefore exactly on the cuts) at every
/// integer frame time.
fn slide_spec(kind: SessionKind, frames: usize, span: f64) -> SessionSpec<2> {
    SessionSpec {
        kind,
        trajectory: Trajectory::linear(
            Rect::from_corners([0.0, 0.0], [1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames)
            .map(|k| span * k as f64 / frames as f64)
            .collect(),
    }
}

fn build_partitioned(grid: RegionGrid, preload: &[R]) -> PartitionedDqServer<2, Pager> {
    PartitionedDqServer::build(grid, preload, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

fn build_tree<S: PageStore>(store: S, preload: &[R]) -> RTree<R, S> {
    let mut tree = RTree::new(store, RTreeConfig::default());
    for r in preload {
        tree.insert(*r, r.seg.t.lo);
    }
    tree
}

/// Per-frame delivered (oid, seq) sets, in frame order. In-frame order
/// is a tie-break artifact (queue pop order vs merge order), so frame
/// *sets* are the layout-independent contract.
fn frame_sets(s: &SessionOutput) -> Vec<Vec<(u32, u32)>> {
    let mut off = 0;
    s.frames
        .iter()
        .map(|f| {
            let mut set = s.results[off..off + f.results].to_vec();
            off += f.results;
            set.sort_unstable();
            set
        })
        .collect()
}

/// Seam oracle: for 1-, 2- and 4-region grids with objects sitting
/// exactly on every cut, each entry event is delivered exactly once and
/// in the same frame as the unpartitioned server delivers it.
#[test]
fn pdq_entry_events_are_exactly_once_across_seams() {
    let recs = integer_line(40);
    let spec = slide_spec(SessionKind::Pdq, 40, 40.0);
    let mono = DqServer::new(build_tree(Pager::new(), &recs))
        .serve_serial(std::slice::from_ref(&spec), &[]);
    let expected = frame_sets(&mono.sessions[0]);
    assert!(
        mono.sessions[0].results.len() > 30,
        "sweep must actually deliver entries"
    );

    for cuts in [vec![], vec![20.0], vec![10.0, 20.0, 30.0]] {
        let grid = if cuts.is_empty() {
            RegionGrid::single()
        } else {
            RegionGrid::from_cuts(0, cuts.clone())
        };
        let regions = grid.len();
        let server = build_partitioned(grid, &recs);
        // Objects on a cut are stored twice (closed slabs) …
        if regions > 1 {
            let total: u64 = server.region_record_counts().iter().sum();
            assert_eq!(
                total,
                recs.len() as u64 + cuts.len() as u64,
                "{regions} regions: each cut object replicated once per side"
            );
        }
        let report = server.serve(std::slice::from_ref(&spec), &[]);
        // … yet delivered once: no duplicate (oid, seq) ever.
        let mut seen = std::collections::HashSet::new();
        for id in &report.sessions[0].results {
            assert!(seen.insert(*id), "{regions} regions: duplicate entry {id:?}");
        }
        assert_eq!(
            frame_sets(&report.sessions[0]),
            expected,
            "{regions} regions: frame assignment diverged from unpartitioned"
        );
    }
}

/// NPDQ across seams: per-frame reports contain no duplicates, never
/// contain a non-matching object, and never miss a true new entry —
/// entry events stay exactly-once even though snapshot suppression is
/// layout-dependent.
#[test]
fn npdq_seam_frames_are_sound_and_entry_complete() {
    let recs = integer_line(40);
    let frames = 20;
    let spec = slide_spec(SessionKind::Npdq, frames, 20.0);
    let server = build_partitioned(RegionGrid::from_cuts(0, vec![5.0, 10.0, 15.0]), &recs);
    let report = server.serve(std::slice::from_ref(&spec), &[]);
    // NPDQ executes at every frame time, endpoints included.
    let per_frame = frame_sets(&report.sessions[0]);
    assert_eq!(per_frame.len(), frames + 1);

    // Geometric truth at time t: the window is exactly [t, t+1] × [0,1].
    let matching = |t: f64| -> Vec<(u32, u32)> {
        recs.iter()
            .filter(|r| {
                let x = f64::from(r.oid);
                t <= x && x <= t + 1.0
            })
            .map(|r| (r.oid, r.seq))
            .collect()
    };
    for (k, got) in per_frame.iter().enumerate() {
        let t = spec.frame_times[k];
        let expect = matching(t);
        // No duplicates within the frame (seam replicas merged).
        let mut dedup = got.clone();
        dedup.dedup();
        assert_eq!(*got, dedup, "frame {k}: duplicate report");
        // Soundness: only objects actually inside the window.
        for id in got {
            assert!(expect.contains(id), "frame {k}: {id:?} outside window");
        }
        // Entry completeness: an object not matching last frame but
        // matching now cannot be suppressed by any layout.
        if k > 0 {
            let prev = matching(spec.frame_times[k - 1]);
            for id in &expect {
                if !prev.contains(id) {
                    assert!(got.contains(id), "frame {k}: new entry {id:?} missed");
                }
            }
        } else {
            assert_eq!(*got, expect, "first frame must report the full window");
        }
    }
}

/// The mixed PDQ/NPDQ dataset workload from the service suite, served
/// partitioned over 2 and 4 regions: the concurrent run must be
/// bit-identical to the partitioned serial protocol, per session.
#[test]
fn partitioned_serve_matches_partitioned_serial_on_mixed_workload() {
    const FRAMES: usize = 20;
    let ds = Dataset::generate(DatasetConfig {
        objects: 400,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xD1CE,
    });
    let records = ds.nsi_records();
    let split = records.len() * 8 / 10;
    let (preload, live) = records.split_at(split);
    let batch = live.len().div_ceil(FRAMES);
    let inserts: Vec<Vec<(R, f64)>> = live
        .chunks(batch)
        .map(|c| c.iter().map(|r| (*r, r.seg.t.lo)).collect())
        .collect();
    let specs: Vec<SessionSpec<2>> = QueryWorkload::new(QueryWorkloadConfig {
        count: 6,
        data_duration: 15.0,
        subsequent_frames: FRAMES,
        ..QueryWorkloadConfig::paper(0.8)
    })
    .generate()
    .into_iter()
    .enumerate()
    .map(|(i, q)| SessionSpec {
        kind: if i % 2 == 0 {
            SessionKind::Pdq
        } else {
            SessionKind::Npdq
        },
        trajectory: q.trajectory,
        frame_times: q.frame_times,
    })
    .collect();

    let live_total: usize = inserts.iter().map(Vec::len).sum();
    for cuts in [vec![50.0], vec![25.0, 50.0, 75.0]] {
        let grid = RegionGrid::from_cuts(0, cuts);
        let regions = grid.len();
        let parallel = PartitionedDqServer::build(grid.clone(), preload, |_| {
            RTree::new(ShardedBufferPool::new(Pager::new(), 64, 4), RTreeConfig::default())
        })
        .serve(&specs, &inserts);
        let serial = build_partitioned(grid, preload).serve_serial(&specs, &inserts);

        assert!(parallel.base.writer_outcome.is_ok());
        assert_eq!(parallel.base.frames, serial.base.frames);
        // Physical inserts include seam replicas, identically on both
        // sides, and never fewer than the logical batch count.
        assert_eq!(parallel.base.inserts_applied, serial.base.inserts_applied);
        assert!(parallel.base.inserts_applied >= live_total);
        for (i, (p, s)) in parallel.sessions.iter().zip(&serial.sessions).enumerate() {
            assert!(p.outcome.is_ok(), "session {i}: {:?}", p.outcome);
            assert_eq!(
                p.results, s.results,
                "{regions} regions, session {i} ({:?}): concurrent diverged from serial",
                specs[i].kind
            );
        }
        assert!(parallel.total_results() > 0);
    }
}

/// Per-region reconciliation: each region's tree-level read counters
/// must equal that region's attributed session reads plus its writer
/// reads, and every one of those reads must be a pool hit or miss —
/// the PR 3 identities, now holding region by region.
#[test]
fn per_region_reconciliation_identities_hold() {
    let recs = integer_line(60);
    let specs = vec![
        slide_spec(SessionKind::Pdq, 20, 40.0),
        slide_spec(SessionKind::Npdq, 20, 40.0),
    ];
    let inserts: Vec<Vec<(R, f64)>> = (0..20)
        .map(|k| {
            let t = k as f64;
            vec![(
                R::new(
                    1000 + k as u32,
                    0,
                    Interval::new(t, 200.0),
                    [t * 2.0 + 0.5, 0.5],
                    [t * 2.0 + 0.5, 0.5],
                ),
                t,
            )]
        })
        .collect();

    let grid = RegionGrid::from_cuts(0, vec![20.0, 40.0]);
    let server = PartitionedDqServer::build(grid, &recs, |_| {
        RTree::new(
            ShardedBufferPool::new(Pager::with_page_size(256), 16, 2),
            RTreeConfig::default(),
        )
    });
    let before: Vec<_> = (0..3)
        .map(|r| {
            server.with_region_tree(r, |t| (t.level_counters().snapshot(), t.store().cache_stats()))
        })
        .collect();
    let report = server.serve(&specs, &inserts);
    assert!(report.base.writer_outcome.is_ok());

    let mut summed_reads = 0;
    for (r, (levels0, cache0)) in before.into_iter().enumerate() {
        let (levels, cache) =
            server.with_region_tree(r, |t| (t.level_counters().snapshot(), t.store().cache_stats()));
        let reads = (levels - levels0).total_reads();
        assert_eq!(
            reads,
            report.regions[r].session_reads + report.regions[r].writer_reads,
            "region {r}: tree reads vs attributed reads"
        );
        assert_eq!(
            (cache.hits - cache0.hits) + (cache.misses - cache0.misses),
            reads,
            "region {r}: every read is a pool hit or miss"
        );
        summed_reads += reads;
    }
    // And the summed identity matches the aggregate report.
    assert_eq!(
        summed_reads,
        report.base.total_stats().disk_accesses + report.base.writer_reads
    );
}
