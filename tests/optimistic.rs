//! Optimistic-read suite: torn-read stress and retry accounting for the
//! latch-free `TreeReader` path.
//!
//! The protocol under test (see `rtree::epoch`): the writer brackets
//! every mutation in a seqlock write section; readers validate the
//! sequence after each node visit and retry on conflict. The contracts:
//!
//! - **Prefix oracle**: records are inserted in id order, so *every*
//!   consistent snapshot — no matter how the writer interleaves — must
//!   see exactly the ids `0..len` for the `len` it pinned. A torn
//!   multi-page view straddling a split would break this.
//! - **Accounting identity**: every node read the level counters see is
//!   either delivered to a reader, discarded-and-counted in
//!   `read_retries`, or performed by the writer (whose read count is
//!   reproduced exactly by a deterministic offline replay of the same
//!   insert sequence). Nothing is double-counted, nothing is lost.
//! - **Deterministic conflicts**: a pinned snapshot observes a version
//!   bump as `StorageError::Conflict` on its next visit (without
//!   performing the read), `with_consistent` absorbs it by re-pinning,
//!   and a writer stuck in its section degrades readers into bounded
//!   conflict errors instead of hanging them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig, TreeRead, TreeReadRetry};
use dq_repro::stkit::Interval;
use dq_repro::storage::{Pager, StorageError};
use parking_lot::RwLock;
use std::sync::Arc;

type R = NsiSegmentRecord<2>;

/// Record `i` sits at a deterministic point; ids are the oracle.
fn rec(i: u32) -> R {
    let x = f64::from(i % 100) + 0.5;
    let y = f64::from(i / 100) + 0.5;
    R::new(i, 0, Interval::new(0.0, 10.0), [x, y], [x, y])
}

/// DFS over one view, counting every delivered node visit into
/// `visits` (across failed snapshot attempts too — a read that
/// validated stays "delivered" even if its snapshot later conflicts;
/// only the conflicting read itself is re-counted as a retry by the
/// reader internals).
fn scan<T: TreeRead<R> + ?Sized>(
    view: &T,
    visits: &AtomicU64,
) -> Result<(u64, Vec<u32>), StorageError> {
    let len = view.len();
    let mut ids = Vec::new();
    let mut stack = vec![view.root_page()];
    while let Some(page) = stack.pop() {
        let node = view.try_read_node(page)?;
        visits.fetch_add(1, Ordering::Relaxed);
        if node.is_leaf() {
            for r in node.leaf_records() {
                ids.push(r.oid);
            }
        } else {
            for (_, c) in node.internal_entries() {
                stack.push(c);
            }
        }
    }
    Ok((len, ids))
}

/// `ids` (unordered) must be exactly `0..len`.
fn assert_prefix(len: u64, mut ids: Vec<u32>) {
    ids.sort_unstable();
    assert_eq!(ids.len() as u64, len, "snapshot delivered a non-len id set");
    for (k, id) in ids.iter().enumerate() {
        assert_eq!(
            *id, k as u32,
            "snapshot saw a torn id set: expected the exact prefix 0..{len}"
        );
    }
}

const PRELOAD: u32 = 64;

/// Torn-read stress: a writer appends ids in order while optimistic
/// readers snapshot-scan through `with_consistent`. Every snapshot must
/// be an exact id prefix; retries must actually occur (the writer keeps
/// going until they do); and afterwards the optimistic scan, the
/// locked-path scan, and the read-accounting identity all agree.
#[test]
fn prefix_oracle_and_identity_under_live_writer() {
    let mut tree = RTree::new(Pager::new(), RTreeConfig::default()).map_store(Arc::new);
    for i in 0..PRELOAD {
        tree.insert(rec(i), 0.0);
    }
    let levels0 = tree.level_counters().snapshot();
    let epoch0 = tree.epoch_stats();
    let reader = tree.reader();
    let lock = RwLock::new(tree);

    let stop = AtomicBool::new(false);
    let visits = AtomicU64::new(0);
    let inserted = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            // At least BASE inserts; then keep the write sections coming
            // until the readers have genuinely conflicted at least once
            // (bounded by a generous deadline so a quiet scheduler can't
            // hang the suite).
            const BASE: u32 = 4_000;
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut i = PRELOAD;
            loop {
                {
                    let mut t = lock.write();
                    t.insert(rec(i), 0.0);
                }
                i += 1;
                let done_base = i >= PRELOAD + BASE;
                let conflicted = {
                    let t = lock.read();
                    let d = t.epoch_stats() - epoch0;
                    d.read_retries + d.version_conflicts > 0
                };
                if done_base && (conflicted || Instant::now() > deadline) {
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
            i
        });
        for _ in 0..2 {
            s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    match reader.with_consistent(|view| scan(view, &visits)) {
                        Ok((len, ids)) => assert_prefix(len, ids),
                        // A stormy interval can exhaust the snapshot
                        // retry budget; the conflict is the documented
                        // outcome, not a failure.
                        Err(StorageError::Conflict { .. }) => {}
                        Err(e) => panic!("unexpected storage error: {e}"),
                    }
                }
            });
        }
        writer.join().unwrap()
    });

    // Final agreement: optimistic snapshot == locked-path scan == oracle.
    let (len_opt, ids_opt) = reader
        .with_consistent(|view| scan(view, &visits))
        .expect("no conflicts possible after the writer stopped");
    let tree = lock.read();
    let (len_locked, ids_locked) = scan(&*tree, &visits).unwrap();
    assert_eq!(len_opt, u64::from(inserted));
    assert_eq!(len_locked, u64::from(inserted));
    let mut sorted_opt = ids_opt.clone();
    sorted_opt.sort_unstable();
    let mut sorted_locked = ids_locked;
    sorted_locked.sort_unstable();
    assert_eq!(sorted_opt, sorted_locked, "optimistic vs locked scan diverged");
    assert_prefix(len_opt, ids_opt);

    // The stress was real: validation failures happened and were counted.
    let epoch = tree.epoch_stats() - epoch0;
    assert!(
        epoch.read_retries + epoch.version_conflicts > 0,
        "the writer never managed to conflict a reader — stress was vacuous"
    );

    // Accounting identity. The writer's own node reads are reproduced by
    // replaying the identical insert sequence offline (insert logic is
    // deterministic in the record sequence, independent of concurrent
    // readers), so: level reads == delivered reads + discarded
    // (retried) reads + writer reads — nothing lost, nothing counted
    // twice.
    let mut replay = RTree::new(Pager::new(), RTreeConfig::default());
    for i in 0..PRELOAD {
        replay.insert(rec(i), 0.0);
    }
    let replay0 = replay.level_counters().snapshot();
    for i in PRELOAD..inserted {
        replay.insert(rec(i), 0.0);
    }
    let writer_reads = (replay.level_counters().snapshot() - replay0).total_reads();
    let levels = tree.level_counters().snapshot() - levels0;
    assert_eq!(
        levels.total_reads(),
        visits.load(Ordering::Relaxed) + epoch.read_retries + writer_reads,
        "level reads must equal delivered + retried + writer reads"
    );
}

/// A pinned snapshot is invalidated by the next write section: the next
/// visit surfaces `Conflict` without performing the read, and
/// `with_consistent` absorbs the conflict by re-pinning.
#[test]
fn pinned_snapshot_conflicts_deterministically() {
    let mut tree = RTree::new(Pager::new(), RTreeConfig::default()).map_store(Arc::new);
    for i in 0..PRELOAD {
        tree.insert(rec(i), 0.0);
    }
    let reader = tree.reader();
    let visits = AtomicU64::new(0);

    // Pin, then mutate: the pinned view must refuse its next visit.
    let snap = reader.pin().unwrap();
    let stats0 = tree.epoch_stats();
    tree.insert(rec(PRELOAD), 0.0);
    let root = tree.root_page();
    match snap.try_read_node(root) {
        Err(StorageError::Conflict { .. }) => {}
        Err(e) => panic!("stale snapshot must conflict, got error {e}"),
        Ok(_) => panic!("stale snapshot must conflict, got a delivered node"),
    }
    let d = tree.epoch_stats() - stats0;
    assert_eq!(d.version_conflicts, 1, "exactly one conflict event");
    assert_eq!(d.read_retries, 0, "the pre-check refused without reading");

    // The same closure through with_consistent: the first attempt is
    // made to conflict by an interleaved insert, the re-pin succeeds.
    let mut attempt = 0;
    let tree_cell = RwLock::new(tree);
    let (len, ids) = reader
        .with_consistent(|view| {
            attempt += 1;
            if attempt == 1 {
                tree_cell.write().insert(rec(PRELOAD + 1), 0.0);
                // The version moved while this snapshot is open: the
                // next visit must abort the attempt.
                match view.try_read_node(view.root_page()) {
                    Err(e) => return Err(e),
                    Ok(_) => panic!("stale snapshot must conflict"),
                }
            }
            scan(view, &visits)
        })
        .expect("second attempt runs against a fresh pin");
    assert_eq!(attempt, 2, "with_consistent must have re-pinned once");
    assert_prefix(len, ids);
    assert_eq!(len, u64::from(PRELOAD) + 2);
}

/// A writer stuck inside its write section cannot hang readers: the
/// bounded stable-sequence spin gives up with `Conflict`, for both the
/// per-visit and the pinned grades.
#[test]
fn stuck_writer_degrades_readers_instead_of_hanging() {
    let mut tree = RTree::new(Pager::new(), RTreeConfig::default()).map_store(Arc::new);
    for i in 0..PRELOAD {
        tree.insert(rec(i), 0.0);
    }
    let reader = tree.reader();
    let root = tree.root_page();
    let stats0 = tree.epoch_stats();

    reader.epoch().begin_write(); // writer enters and never leaves
    match reader.try_read_node(root) {
        Err(StorageError::Conflict { .. }) => {}
        Err(e) => panic!("expected bounded conflict, got error {e}"),
        Ok(_) => panic!("expected bounded conflict, got a delivered node"),
    }
    assert!(reader.pin().is_err(), "pin must refuse an open write section");
    let d = tree.epoch_stats() - stats0;
    assert_eq!(d.version_conflicts, 2);

    // The writer recovers; so do the readers, with no residue.
    reader
        .epoch()
        .end_write(root, tree.height(), tree.len());
    let visits = AtomicU64::new(0);
    let (len, ids) = reader.with_consistent(|view| scan(view, &visits)).unwrap();
    assert_prefix(len, ids);
}
