//! End-to-end serving: [`DqServer`] running mixed PDQ/NPDQ sessions
//! concurrently over ONE shared tree backed by a sharded buffer pool,
//! with a writer inserting live updates between frames. The concurrent
//! run must be *exactly* deterministic: per-session result sequences
//! equal the single-threaded reference protocol on an identically
//! prepared server.

use dq_repro::mobiquery::{DqServer, PartitionedDqServer, RegionGrid, SessionKind, SessionSpec};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::storage::{PageStore, Pager, ShardedBufferPool};
use dq_repro::workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

const FRAMES: usize = 20;

/// Workload: 400 random-walk objects, 80 % pre-loaded, 20 % arriving
/// live in per-frame batches; 6 sessions alternating PDQ/NPDQ.
struct Fixture {
    preload: Vec<NsiSegmentRecord<2>>,
    inserts: Vec<Vec<(NsiSegmentRecord<2>, f64)>>,
    specs: Vec<SessionSpec<2>>,
}

fn fixture() -> Fixture {
    let ds = Dataset::generate(DatasetConfig {
        objects: 400,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xD1CE,
    });
    let records = ds.nsi_records(); // time-ordered
    let split = records.len() * 8 / 10;
    let (preload, live) = records.split_at(split);
    let batch = live.len().div_ceil(FRAMES);
    let inserts = live
        .chunks(batch)
        .map(|c| c.iter().map(|r| (*r, r.seg.t.lo)).collect())
        .collect();
    let specs = QueryWorkload::new(QueryWorkloadConfig {
        count: 6,
        data_duration: 15.0,
        subsequent_frames: FRAMES,
        ..QueryWorkloadConfig::paper(0.8)
    })
    .generate()
    .into_iter()
    .enumerate()
    .map(|(i, q)| SessionSpec {
        kind: if i % 2 == 0 {
            SessionKind::Pdq
        } else {
            SessionKind::Npdq
        },
        trajectory: q.trajectory,
        frame_times: q.frame_times,
    })
    .collect();
    Fixture {
        preload: preload.to_vec(),
        inserts,
        specs,
    }
}

fn build_tree<S: PageStore>(store: S, preload: &[NsiSegmentRecord<2>]) -> RTree<NsiSegmentRecord<2>, S> {
    let mut tree = RTree::new(store, RTreeConfig::default());
    for r in preload {
        tree.insert(*r, r.seg.t.lo);
    }
    tree
}

#[test]
fn concurrent_serving_matches_serial_reference() {
    let fx = fixture();
    assert!(fx.specs.len() >= 4, "need at least 4 mixed sessions");

    // Concurrent server over a sharded buffer pool (64 frames, 4 shards).
    let pool = ShardedBufferPool::new(Pager::new(), 64, 4);
    let server = DqServer::new(build_tree(pool, &fx.preload));
    let parallel = server.serve(&fx.specs, &fx.inserts);

    // Serial reference over an identically prepared plain-pager tree.
    let reference = DqServer::new(build_tree(Pager::new(), &fx.preload));
    let serial = reference.serve_serial(&fx.specs, &fx.inserts);

    let live_total: usize = fx.inserts.iter().map(Vec::len).sum();
    assert_eq!(parallel.inserts_applied, live_total);
    assert_eq!(serial.inserts_applied, live_total);
    assert_eq!(parallel.frames, serial.frames);

    for (i, (p, s)) in parallel.sessions.iter().zip(&serial.sessions).enumerate() {
        assert_eq!(
            p.results, s.results,
            "session {i} ({:?}) diverged from the serial reference",
            fx.specs[i].kind
        );
    }
    // The workload actually exercises the sessions and the pool.
    assert!(parallel.total_results() > 0, "no session returned anything");
    assert!(parallel.total_stats().disk_accesses > 0);
    let cs = server.with_tree(|t| t.store().cache_stats());
    assert!(cs.hits > 0, "buffer pool never hit");
    assert!(cs.misses > 0, "buffer pool never missed");
}

#[test]
fn serving_twice_is_reproducible() {
    let fx = fixture();
    let run = |threads: bool| {
        let pool = ShardedBufferPool::new(Pager::new(), 32, 2);
        let server = DqServer::new(build_tree(pool, &fx.preload));
        if threads {
            server.serve(&fx.specs, &fx.inserts)
        } else {
            server.serve_serial(&fx.specs, &fx.inserts)
        }
        .sessions
        .into_iter()
        .map(|s| s.results)
        .collect::<Vec<_>>()
    };
    assert_eq!(run(true), run(true), "two concurrent runs diverged");
    assert_eq!(run(true), run(false), "concurrent vs serial diverged");
}

/// Bridge to the partitioned server: over a single region the region
/// trees are built by the same insert sequence as [`DqServer`]'s tree,
/// so per-frame delivered *sets* must agree exactly for every session —
/// the only legal difference is in-frame tie order (queue pop order vs
/// the router's (start, oid, seq) merge).
#[test]
fn single_region_partitioned_matches_dqserver_frame_sets() {
    let fx = fixture();
    let partitioned = PartitionedDqServer::build(RegionGrid::single(), &fx.preload, |_| {
        RTree::new(ShardedBufferPool::new(Pager::new(), 64, 4), RTreeConfig::default())
    })
    .serve(&fx.specs, &fx.inserts);
    let mono = DqServer::new(build_tree(Pager::new(), &fx.preload)).serve_serial(&fx.specs, &fx.inserts);

    // One region means no seam replication: physical == logical inserts.
    let live_total: usize = fx.inserts.iter().map(Vec::len).sum();
    assert_eq!(partitioned.base.inserts_applied, live_total);

    let frame_sets = |s: &dq_repro::mobiquery::SessionOutput| -> Vec<Vec<(u32, u32)>> {
        let mut off = 0;
        s.frames
            .iter()
            .map(|f| {
                let mut set = s.results[off..off + f.results].to_vec();
                off += f.results;
                set.sort_unstable();
                set
            })
            .collect()
    };
    for (i, (p, m)) in partitioned.sessions.iter().zip(&mono.sessions).enumerate() {
        assert!(p.outcome.is_ok(), "session {i}: {:?}", p.outcome);
        assert_eq!(
            frame_sets(p),
            frame_sets(m),
            "session {i} ({:?}) diverged from the single-tree server",
            fx.specs[i].kind
        );
    }
}
