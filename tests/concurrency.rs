//! Concurrency: the paper's server model runs many query sessions
//! against one index. The tree and pager use interior mutability
//! (`parking_lot`), so shared read-only access from multiple threads
//! must be safe and consistent.

use dq_repro::mobiquery::{NaiveEngine, NpdqEngine, PdqEngine};
use dq_repro::storage::PageStore;
use dq_repro::workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};

fn setup() -> (
    Dataset,
    dq_repro::rtree::RTree<dq_repro::rtree::NsiSegmentRecord<2>, dq_repro::storage::Pager>,
    Vec<dq_repro::workload::DynamicQuerySpec>,
) {
    let ds = Dataset::generate(DatasetConfig {
        objects: 400,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xC0C0,
    });
    let tree = ds.build_nsi_tree();
    let specs = QueryWorkload::new(QueryWorkloadConfig {
        count: 8,
        data_duration: 15.0,
        subsequent_frames: 20,
        ..QueryWorkloadConfig::paper(0.8)
    })
    .generate();
    (ds, tree, specs)
}

#[test]
fn parallel_pdq_sessions_share_one_tree() {
    let (_ds, tree, specs) = setup();
    // Serial reference.
    let serial: Vec<Vec<(u32, u32)>> = specs
        .iter()
        .map(|spec| {
            let mut e = PdqEngine::start(&tree, spec.trajectory.clone());
            let t0 = spec.frame_times[0];
            let t1 = *spec.frame_times.last().unwrap();
            e.drain_window(&tree, t0, t1)
                .iter()
                .map(|r| (r.record.oid, r.record.seq))
                .collect()
        })
        .collect();
    // Parallel: one session per thread, all sharing &tree.
    let parallel: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let tree = &tree;
                s.spawn(move || {
                    let mut e = PdqEngine::start(tree, spec.trajectory.clone());
                    let t0 = spec.frame_times[0];
                    let t1 = *spec.frame_times.last().unwrap();
                    e.drain_window(tree, t0, t1)
                        .iter()
                        .map(|r| (r.record.oid, r.record.seq))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_mixed_engines() {
    let (ds, tree, specs) = setup();
    let dta = ds.build_dta_tree();
    let io_before = tree.store().io();
    std::thread::scope(|s| {
        // Naive scans.
        for spec in &specs[..4] {
            let tree = &tree;
            s.spawn(move || {
                let e = NaiveEngine::new();
                for q in spec.snapshots() {
                    e.query_nsi(tree, &q, |_| {});
                }
            });
        }
        // NPDQ sessions on the DTA tree.
        for spec in &specs[4..] {
            let dta = &dta;
            s.spawn(move || {
                let mut e = NpdqEngine::new();
                for (i, _) in spec.frame_times.iter().enumerate() {
                    e.execute(dta, &spec.open_snapshot(i), f64::INFINITY, |_| {});
                }
            });
        }
    });
    // The shared I/O counter saw every access, none lost to races.
    let delta = tree.store().io() - io_before;
    assert!(delta.reads > 0);
    assert_eq!(delta.writes, 0);
}
