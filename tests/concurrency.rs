//! Concurrency: the paper's server model runs many query sessions
//! against one index. The tree and pager use interior mutability
//! (`parking_lot`), so shared read-only access from multiple threads
//! must be safe and consistent.

use dq_repro::mobiquery::{NaiveEngine, NpdqEngine, PdqEngine};
use dq_repro::storage::PageStore;
use dq_repro::workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};
use parking_lot::RwLock;
use std::sync::Barrier;

fn setup() -> (
    Dataset,
    dq_repro::rtree::RTree<dq_repro::rtree::NsiSegmentRecord<2>, dq_repro::storage::Pager>,
    Vec<dq_repro::workload::DynamicQuerySpec>,
) {
    let ds = Dataset::generate(DatasetConfig {
        objects: 400,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xC0C0,
    });
    let tree = ds.build_nsi_tree();
    let specs = QueryWorkload::new(QueryWorkloadConfig {
        count: 8,
        data_duration: 15.0,
        subsequent_frames: 20,
        ..QueryWorkloadConfig::paper(0.8)
    })
    .generate();
    (ds, tree, specs)
}

#[test]
fn parallel_pdq_sessions_share_one_tree() {
    let (_ds, tree, specs) = setup();
    // Serial reference.
    let serial: Vec<Vec<(u32, u32)>> = specs
        .iter()
        .map(|spec| {
            let mut e = PdqEngine::start(&tree, spec.trajectory.clone());
            let t0 = spec.frame_times[0];
            let t1 = *spec.frame_times.last().unwrap();
            e.drain_window(&tree, t0, t1)
                .iter()
                .map(|r| (r.record.oid, r.record.seq))
                .collect()
        })
        .collect();
    // Parallel: one session per thread, all sharing &tree.
    let parallel: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                let tree = &tree;
                s.spawn(move || {
                    let mut e = PdqEngine::start(tree, spec.trajectory.clone());
                    let t0 = spec.frame_times[0];
                    let t1 = *spec.frame_times.last().unwrap();
                    e.drain_window(tree, t0, t1)
                        .iter()
                        .map(|r| (r.record.oid, r.record.seq))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}

#[test]
fn parallel_mixed_engines() {
    let (ds, tree, specs) = setup();
    let dta = ds.build_dta_tree();
    let io_before = tree.store().io();
    std::thread::scope(|s| {
        // Naive scans.
        for spec in &specs[..4] {
            let tree = &tree;
            s.spawn(move || {
                let e = NaiveEngine::new();
                for q in spec.snapshots() {
                    e.query_nsi(tree, &q, |_| {});
                }
            });
        }
        // NPDQ sessions on the DTA tree.
        for spec in &specs[4..] {
            let dta = &dta;
            s.spawn(move || {
                let mut e = NpdqEngine::new();
                for (i, _) in spec.frame_times.iter().enumerate() {
                    e.execute(dta, &spec.open_snapshot(i), f64::INFINITY, |_| {});
                }
            });
        }
    });
    // The shared I/O counter saw every access, none lost to races.
    let delta = tree.store().io() - io_before;
    assert!(delta.reads > 0);
    assert_eq!(delta.writes, 0);
}

/// NPDQ timestamp invalidation under a live writer (§4.2): a subtree may
/// only be discarded against the previous query if its timestamp shows no
/// insert since that query ran. Two threads interleave frame by frame —
/// the writer inserts a batch under the write lock, then the query thread
/// runs the NPDQ frame under a read lock. NPDQ emits per-frame *deltas*,
/// so the invariant is the session union: every object a naive scan of
/// the identical evolving tree ever sees must be delivered by NPDQ too.
/// If invalidation were broken, NPDQ would discard freshly updated
/// subtrees and silently drop the interleaved records from the union.
#[test]
fn npdq_sees_interleaved_inserts_from_writer_thread() {
    use std::collections::HashSet;

    let ds = Dataset::generate(DatasetConfig {
        objects: 400,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xBEEF,
    });
    let records = ds.dta_records(); // time-ordered
    let split = records.len() * 7 / 10;
    let (preload, live) = records.split_at(split);
    let spec = QueryWorkload::new(QueryWorkloadConfig {
        count: 1,
        data_duration: 15.0,
        subsequent_frames: 24,
        ..QueryWorkloadConfig::paper(0.8)
    })
    .generate_one(0);
    let frames = spec.frame_times.len();
    let batches: Vec<_> = live.chunks(live.len().div_ceil(frames)).collect();

    let tree = {
        let mut t = dq_repro::rtree::RTree::new(
            dq_repro::storage::Pager::new(),
            dq_repro::rtree::RTreeConfig::default(),
        );
        for r in preload {
            t.insert(*r, r.seg.t.lo);
        }
        RwLock::new(t)
    };
    let barrier = Barrier::new(2);
    let mut inserted_in_view = 0usize;

    // Assertions happen after the scope: a panic inside the barrier
    // protocol would strand the peer thread at the barrier forever.
    let (npdq_union, naive_union, npdq_emitted, naive_emitted) = std::thread::scope(|s| {
        // Writer: one batch per frame, stamped with the frame time.
        let writer = s.spawn(|| {
            let mut in_view = 0usize;
            for k in 0..frames {
                if let Some(batch) = batches.get(k) {
                    let mut t = tree.write();
                    let now = spec.frame_times[k];
                    for r in *batch {
                        t.insert(*r, now);
                        // Will a later frame's query see this record?
                        if (k + 1..frames)
                            .any(|j| spec.open_snapshot(j).matches_segment(&r.seg))
                        {
                            in_view += 1;
                        }
                    }
                }
                barrier.wait(); // batch k is now visible
                barrier.wait(); // frame k has been queried
            }
            in_view
        });
        // Query session: NPDQ deltas vs naive on the SAME evolving state.
        let mut engine = NpdqEngine::new();
        let naive = NaiveEngine::new();
        let mut npdq_union = HashSet::new();
        let mut naive_union = HashSet::new();
        let mut npdq_emitted = 0u64;
        let mut naive_emitted = 0u64;
        for k in 0..frames {
            barrier.wait();
            {
                let t = tree.read();
                let q = spec.open_snapshot(k);
                let now = spec.frame_times[k];
                npdq_emitted += engine
                    .execute(&*t, &q, now, |r| {
                        npdq_union.insert((r.oid, r.seq));
                    })
                    .results;
                naive_emitted += naive
                    .query_dta(&t, &q, |r| {
                        naive_union.insert((r.oid, r.seq));
                    })
                    .results;
            }
            barrier.wait();
        }
        inserted_in_view = writer.join().unwrap();
        (npdq_union, naive_union, npdq_emitted, naive_emitted)
    });

    assert_eq!(
        npdq_union, naive_union,
        "NPDQ session union must match naive union over the same states"
    );
    // The workload genuinely interleaves: some live-inserted records were
    // in view of a later frame, so the unions include them.
    assert!(inserted_in_view > 0, "workload never put an insert in view");
    // The previous-query machinery was exercised, not vacuously bypassed:
    // with 80 % frame overlap NPDQ must suppress already-delivered objects.
    assert!(
        npdq_emitted < naive_emitted,
        "NPDQ re-emitted everything ({npdq_emitted} vs naive {naive_emitted})"
    );
}
