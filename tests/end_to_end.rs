//! End-to-end integration tests: the full pipeline from motion
//! simulation through indexing to every query engine, checking the
//! engines against each other and against brute force.

use dq_repro::mobiquery::{NaiveEngine, NpdqEngine, PdqEngine, SnapshotQuery, Trajectory};
use dq_repro::motion::MotionUpdate;
use dq_repro::rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{PageStore, Pager};
use dq_repro::workload::{Dataset, DatasetConfig, QueryWorkload, QueryWorkloadConfig};
use std::collections::BTreeSet;

fn dataset() -> Dataset {
    Dataset::generate(DatasetConfig {
        objects: 300,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xE2E,
    })
}

fn workload(overlap: f64, count: usize) -> Vec<dq_repro::workload::DynamicQuerySpec> {
    QueryWorkload::new(QueryWorkloadConfig {
        count,
        data_duration: 15.0,
        subsequent_frames: 30,
        ..QueryWorkloadConfig::paper(overlap)
    })
    .generate()
}

/// Brute force: every (oid, seq) whose segment matches the snapshot.
fn brute_force(updates: &[MotionUpdate<2>], q: &SnapshotQuery<2>) -> BTreeSet<(u32, u32)> {
    updates
        .iter()
        .filter(|u| q.matches_segment(&u.seg))
        .map(|u| (u.oid, u.seq))
        .collect()
}

#[test]
fn naive_matches_brute_force_on_both_layouts() {
    let ds = dataset();
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    let engine = NaiveEngine::new();
    for spec in workload(0.5, 3) {
        for q in spec.snapshots().take(5) {
            let expected = brute_force(ds.updates(), &q);
            let mut got_nsi = BTreeSet::new();
            engine.query_nsi(&nsi, &q, |r| {
                got_nsi.insert((r.oid, r.seq));
            });
            assert_eq!(got_nsi, expected, "NSI naive vs brute force");
            let mut got_dta = BTreeSet::new();
            engine.query_dta(&dta, &q, |r| {
                got_dta.insert((r.oid, r.seq));
            });
            assert_eq!(got_dta, expected, "DTA naive vs brute force");
        }
    }
}

#[test]
fn pdq_delivers_union_of_frames_exactly_once() {
    let ds = dataset();
    let tree = ds.build_nsi_tree();
    let naive = NaiveEngine::new();
    for spec in workload(0.8, 5) {
        // Expected: union over a *dense* frame sampling of naive results
        // is a subset of PDQ's deliveries (PDQ sees continuous time, so
        // it may also deliver objects that cross between frames).
        let mut expected = BTreeSet::new();
        for q in spec.snapshots() {
            naive.query_nsi(&tree, &q, |r| {
                expected.insert((r.oid, r.seq));
            });
        }
        let mut pdq = PdqEngine::start(&tree, spec.trajectory.clone());
        let mut got = Vec::new();
        let t0 = spec.frame_times[0];
        let t_end = *spec.frame_times.last().unwrap();
        for r in pdq.drain_window(&tree, t0, t_end) {
            got.push((r.record.oid, r.record.seq));
        }
        let got_set: BTreeSet<_> = got.iter().copied().collect();
        assert_eq!(got.len(), got_set.len(), "PDQ must not deliver duplicates");
        for e in &expected {
            assert!(got_set.contains(e), "PDQ missed {e:?}");
        }
        // Everything PDQ delivered really intersects the trajectory.
        for &(oid, seq) in &got_set {
            let u = ds
                .updates()
                .iter()
                .find(|u| u.oid == oid && u.seq == seq)
                .unwrap();
            let vis = spec.trajectory.overlap_segment(&u.seg);
            assert!(
                !vis.is_empty(),
                "PDQ delivered object {oid}/{seq} that never intersects the window"
            );
        }
    }
}

#[test]
fn pdq_visibility_agrees_with_naive_frames() {
    let ds = dataset();
    let tree = ds.build_nsi_tree();
    let naive = NaiveEngine::new();
    let spec = &workload(0.9, 1)[0];
    let mut pdq = PdqEngine::start(&tree, spec.trajectory.clone());
    let t0 = spec.frame_times[0];
    let t_end = *spec.frame_times.last().unwrap();
    let results = pdq.drain_window(&tree, t0, t_end);
    // For every frame, the set of objects whose PDQ visibility covers the
    // frame time equals the naive frame result.
    for (i, q) in spec.snapshots().enumerate() {
        let t = spec.frame_times[i];
        let from_visibility: BTreeSet<(u32, u32)> = results
            .iter()
            .filter(|r| r.visibility.contains(t))
            .map(|r| (r.record.oid, r.record.seq))
            .collect();
        let mut from_naive = BTreeSet::new();
        naive.query_nsi(&tree, &q, |r| {
            from_naive.insert((r.oid, r.seq));
        });
        assert_eq!(from_visibility, from_naive, "frame {i}");
    }
}

#[test]
fn npdq_session_union_equals_naive_union() {
    // Denser data than the other tests: discardability needs leaf tiles
    // finer than the query window to prune anything.
    let ds = Dataset::generate(DatasetConfig {
        objects: 1500,
        duration: 15.0,
        space_side: 100.0,
        seed: 0xE2E,
    });
    let tree = ds.build_dta_tree();
    let naive = NaiveEngine::new();
    for spec in workload(0.9, 3) {
        let mut engine = NpdqEngine::new();
        let mut npdq_union = BTreeSet::new();
        let mut naive_union = BTreeSet::new();
        let mut npdq_io = 0;
        let mut naive_io = 0;
        for (i, _) in spec.frame_times.iter().enumerate() {
            let q = spec.open_snapshot(i);
            let s = engine.execute(&tree, &q, f64::INFINITY, |r| {
                npdq_union.insert((r.oid, r.seq));
            });
            npdq_io += s.disk_accesses;
            let ns = naive.query_dta(&tree, &q, |r| {
                naive_union.insert((r.oid, r.seq));
            });
            naive_io += ns.disk_accesses;
        }
        assert_eq!(npdq_union, naive_union, "NPDQ session must lose nothing");
        assert!(
            npdq_io < naive_io,
            "NPDQ should save I/O at 90% overlap: {npdq_io} vs {naive_io}"
        );
    }
}

#[test]
fn pdq_io_is_bounded_by_tree_size_regardless_of_frame_rate() {
    let ds = dataset();
    let tree = ds.build_nsi_tree();
    let inv = tree.validate().unwrap();
    let spec = &workload(0.9, 1)[0];
    // Drain at two very different frame rates; both must be ≤ node count,
    // and per-node-visited identical (I/O-optimality).
    let run = |steps: usize| {
        let mut pdq = PdqEngine::start(&tree, spec.trajectory.clone());
        let t0 = spec.frame_times[0];
        let t_end = *spec.frame_times.last().unwrap();
        let dt = (t_end - t0) / steps as f64;
        for k in 0..steps {
            let _ = pdq.drain_window(&tree, t0 + k as f64 * dt, t0 + (k + 1) as f64 * dt);
        }
        pdq.stats().disk_accesses
    };
    let coarse = run(5);
    let fine = run(500);
    assert_eq!(coarse, fine, "PDQ I/O must be frame-rate independent");
    assert!(fine <= inv.nodes);
}

#[test]
fn live_session_pdq_and_cache() {
    // Full system: stream inserts + PDQ + client cache, via public APIs.
    let mut tree: RTree<NsiSegmentRecord<2>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    let ds = dataset();
    let (pre, live): (Vec<&MotionUpdate<2>>, Vec<_>) =
        ds.updates().iter().partition(|u| u.seg.t.lo < 7.0);
    for u in &pre {
        tree.insert(
            NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
            u.seg.t.lo,
        );
    }
    let trajectory = Trajectory::linear(
        Rect::from_corners([20.0, 40.0], [30.0, 50.0]),
        [3.0, 0.0],
        Interval::new(5.0, 14.0),
        4,
    );
    let mut pdq = PdqEngine::start(&tree, trajectory);
    let mut cache = dq_repro::mobiquery::ClientCache::new();
    let mut feed = live.iter().peekable();
    let mut delivered = BTreeSet::new();
    let mut t = 5.0;
    while t < 14.0 {
        while let Some(u) = feed.peek() {
            if u.seg.t.lo > t {
                break;
            }
            let rec =
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position());
            let report = tree.insert(rec, u.seg.t.lo);
            pdq.notify(&tree, &report);
            feed.next();
        }
        for r in pdq.drain_window(&tree, t, t + 0.25) {
            assert!(
                delivered.insert((r.record.oid, r.record.seq)),
                "duplicate delivery of {:?}",
                (r.record.oid, r.record.seq)
            );
            cache.insert(r.record.oid, r.record, r.visibility);
        }
        cache.advance(t + 0.25);
        t += 0.25;
    }
    assert!(!delivered.is_empty());
    tree.validate().unwrap();
    // Cache never holds objects past their disappearance.
    assert!(cache.len() <= delivered.len());
}

#[test]
fn dta_and_nsi_trees_have_consistent_shape() {
    let ds = dataset();
    let nsi = ds.build_nsi_tree();
    let dta = ds.build_dta_tree();
    assert_eq!(nsi.len(), dta.len());
    assert_eq!(nsi.len() as usize, ds.segment_count());
    nsi.validate().unwrap();
    dta.validate().unwrap();
    // Paper fanouts hold for the on-disk layout.
    assert_eq!(nsi.leaf_capacity(), 127);
    assert_eq!(nsi.internal_capacity(), 145);
    // DTA keys are 32 bytes (one extra axis) — lower internal fanout.
    assert_eq!(dta.internal_capacity(), 112);
    assert_eq!(dta.leaf_capacity(), 127);
}

#[test]
fn io_accounting_is_exact() {
    // Engine-reported disk accesses equal the pager's read counter.
    let ds = dataset();
    let tree = ds.build_nsi_tree();
    let spec = &workload(0.5, 1)[0];
    let before = tree.store().io();
    let mut pdq = PdqEngine::start(&tree, spec.trajectory.clone());
    let t0 = spec.frame_times[0];
    let t1 = *spec.frame_times.last().unwrap();
    let _ = pdq.drain_window(&tree, t0, t1);
    let delta = tree.store().io() - before;
    assert_eq!(delta.reads, pdq.stats().disk_accesses);
    assert_eq!(delta.writes, 0, "queries never write");

    let before = tree.store().io();
    let naive = NaiveEngine::new();
    let s = naive.query_nsi(&tree, &spec.snapshot(0), |_| {});
    assert_eq!((tree.store().io() - before).reads, s.disk_accesses);
}

#[test]
fn dta_record_key_matches_segment_times() {
    // Regression guard for the double-temporal-axes mapping.
    let r = DtaSegmentRecord::<2>::new(
        1,
        0,
        Interval::new(3.0, 7.0),
        [0.0, 0.0],
        [4.0, 4.0],
    );
    let q_sees_it = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [5.0, 5.0]), 5.0);
    let q_too_late = SnapshotQuery::at_instant(Rect::from_corners([0.0, 0.0], [5.0, 5.0]), 8.0);
    use dq_repro::rtree::Record;
    assert!(q_sees_it.dta_key().overlaps(&r.key()));
    assert!(!q_too_late.dta_key().overlaps(&r.key()));
}
