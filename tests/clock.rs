//! Per-region frame clocks, end to end: ragged schedule lengths,
//! sessions joining mid-run, a recut during an active serve, a mid-run
//! session panic, and the frame-report/session-stats identity under
//! out-of-lockstep execution. Every concurrent run is checked against
//! the single-threaded reference protocol — the clock refactor must be
//! invisible to results.

use std::time::Duration;

use dq_repro::mobiquery::{
    DqServer, PartitionedDqServer, RecutPlan, RegionGrid, SessionKind, SessionOutcome,
    SessionPlan, SessionSpec, Trajectory,
};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{FaultPlan, FaultyStore, PageId, PageStore, Pager};

type R = NsiSegmentRecord<2>;

/// Objects on a line: oid `i` sits at `x = i + 0.5`, alive the whole run.
fn line_records(n: u32) -> Vec<R> {
    (0..n)
        .map(|i| {
            let x = f64::from(i) + 0.5;
            R::new(i, 0, Interval::new(0.0, 100.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

fn build_tree<S: PageStore>(store: S, recs: &[R]) -> RTree<R, S> {
    let mut tree = RTree::new(store, RTreeConfig::default());
    for r in recs {
        tree.insert(*r, r.seg.t.lo);
    }
    tree
}

/// A window sliding right from `x0` at unit speed for `span` seconds.
fn slide_spec(kind: SessionKind, x0: f64, frames: usize, span: f64) -> SessionSpec<2> {
    SessionSpec {
        kind,
        trajectory: Trajectory::linear(
            Rect::from_corners([x0, 0.0], [x0 + 1.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, span),
            2,
        ),
        frame_times: (0..=frames)
            .map(|k| span * k as f64 / frames as f64)
            .collect(),
    }
}

/// Per-frame insert batches dropping fresh objects along the line.
fn line_inserts(frames: usize, per_frame: u32) -> Vec<Vec<(R, f64)>> {
    (0..frames)
        .map(|k| {
            let t = k as f64 * 0.3;
            (0..per_frame)
                .map(|j| {
                    let oid = 1000 + (k as u32) * per_frame + j;
                    let x = f64::from(oid % 37) + 0.25;
                    (R::new(oid, 0, Interval::new(t, 100.0), [x, 0.5], [x, 0.5]), t)
                })
                .collect()
        })
        .collect()
}

fn partitioned(grid: RegionGrid, recs: &[R]) -> PartitionedDqServer<2, Pager> {
    PartitionedDqServer::build(grid, recs, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

/// The (oid, seq) stream must never repeat — the paper's "retrieve each
/// object once" contract, per session.
fn assert_each_object_once(results: &[(u32, u32)]) {
    let mut seen = std::collections::HashSet::new();
    for &r in results {
        assert!(seen.insert(r), "object {r:?} delivered twice");
    }
}

/// Σ frame-report stats == session stats and Σ frame results ==
/// delivered count, for every session of a run.
fn assert_frames_reconcile(sessions: &[dq_repro::mobiquery::SessionOutput]) {
    for (i, s) in sessions.iter().enumerate() {
        let mut stats = dq_repro::mobiquery::QueryStats::default();
        let mut results = 0;
        for f in &s.frames {
            stats += f.stats;
            results += f.results;
        }
        assert_eq!(stats, s.stats, "session {i}: Σ frame stats != session stats");
        assert_eq!(results, s.results.len(), "session {i}: Σ frame results");
    }
}

/// Sessions with very different schedule lengths: the short ones finish
/// and detach while the long one keeps consuming frames. Both servers,
/// concurrent == serial, bit for bit.
#[test]
fn ragged_schedule_lengths_match_serial() {
    let recs = line_records(40);
    let inserts = line_inserts(20, 3);
    let specs = [
        slide_spec(SessionKind::Pdq, 0.0, 5, 5.0),
        slide_spec(SessionKind::Npdq, 10.0, 12, 12.0),
        slide_spec(SessionKind::Pdq, 20.0, 20, 16.0),
    ];
    let plans: Vec<SessionPlan<2>> = specs.iter().cloned().map(SessionPlan::new).collect();

    let single = DqServer::new(build_tree(Pager::new(), &recs));
    let p = single.serve_plans(&plans, &inserts);
    let s = DqServer::new(build_tree(Pager::new(), &recs)).serve_serial_plans(&plans, &inserts);
    assert_eq!(p.frames, 20);
    for i in 0..plans.len() {
        assert_eq!(p.sessions[i].results, s.sessions[i].results, "session {i}");
        assert_eq!(p.sessions[i].stats, s.sessions[i].stats, "session {i}");
        // Frame reports match on every deterministic field (latency is
        // wall clock, so it is excluded).
        assert_eq!(p.sessions[i].frames.len(), s.sessions[i].frames.len());
        for (a, b) in p.sessions[i].frames.iter().zip(&s.sessions[i].frames) {
            assert_eq!((a.frame, a.results, a.stats), (b.frame, b.results, b.stats));
        }
    }

    let grid = RegionGrid::from_cuts(0, vec![15.0, 30.0]);
    let pp = partitioned(grid.clone(), &recs).serve_plans(&plans, &inserts);
    let ps = partitioned(grid, &recs).serve_serial_plans(&plans, &inserts);
    for i in 0..plans.len() {
        assert_eq!(pp.sessions[i].results, ps.sessions[i].results, "session {i}");
        assert_eq!(pp.sessions[i].stats, ps.sessions[i].stats, "session {i}");
        assert_each_object_once(&pp.sessions[i].results);
    }
}

/// A session joining at global frame 7 of a 16-frame run: it sees the
/// tree exactly as of its join watermark (batches 0..7 applied, batch 7
/// not yet), reports only frames >= 7, delivers each object once, and
/// matches the serial reference on both servers.
#[test]
fn join_mid_run_sees_exactly_the_tail() {
    let recs = line_records(40);
    let inserts = line_inserts(16, 3);
    let plans = vec![
        SessionPlan::new(slide_spec(SessionKind::Pdq, 0.0, 16, 12.0)),
        SessionPlan::new(slide_spec(SessionKind::Pdq, 8.0, 16, 12.0)).join_at(7),
        SessionPlan::new(slide_spec(SessionKind::Npdq, 20.0, 16, 12.0)).join_at(7),
    ];

    let single = DqServer::new(build_tree(Pager::new(), &recs));
    let p = single.serve_plans(&plans, &inserts);
    let s = DqServer::new(build_tree(Pager::new(), &recs)).serve_serial_plans(&plans, &inserts);
    for i in 0..plans.len() {
        assert_eq!(p.sessions[i].results, s.sessions[i].results, "session {i}");
        assert_eq!(p.sessions[i].stats, s.sessions[i].stats, "session {i}");
        assert_each_object_once(&p.sessions[i].results);
    }
    // Joiners report frames starting at their join watermark only.
    for i in [1, 2] {
        assert!(!p.sessions[i].frames.is_empty(), "joiner {i} never ran");
        assert!(
            p.sessions[i].frames.iter().all(|f| f.frame >= 7),
            "joiner {i} reported a pre-join frame"
        );
    }

    let grid = RegionGrid::from_cuts(0, vec![15.0, 30.0]);
    let pp = partitioned(grid.clone(), &recs).serve_plans(&plans, &inserts);
    let ps = partitioned(grid, &recs).serve_serial_plans(&plans, &inserts);
    for i in 0..plans.len() {
        assert_eq!(pp.sessions[i].results, ps.sessions[i].results, "session {i}");
        assert_each_object_once(&pp.sessions[i].results);
    }
    assert!(pp.sessions[1].frames.iter().all(|f| f.frame >= 7));
}

/// A recut fires at frame 6 while a joiner arrives at frame 3 and a
/// short session has already finished: the epoch handoff must preserve
/// every session's results exactly (recut == no-recut, concurrent ==
/// serial) and leave the server on the new grid.
#[test]
fn recut_during_active_serve_preserves_results() {
    let recs = line_records(40);
    let inserts = line_inserts(12, 3);
    let plans = vec![
        SessionPlan::new(slide_spec(SessionKind::Pdq, 0.0, 12, 10.0)),
        SessionPlan::new(slide_spec(SessionKind::Npdq, 12.0, 12, 10.0)).join_at(3),
        SessionPlan::new(slide_spec(SessionKind::Pdq, 24.0, 4, 4.0)),
    ];
    let recuts = [RecutPlan::new(6, 3)];
    let grid = RegionGrid::from_cuts(0, vec![20.0]);

    let mut server = partitioned(grid.clone(), &recs);
    let p = server.serve_plans_with_recuts(&plans, &inserts, &recuts, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    });
    let flat = partitioned(grid.clone(), &recs).serve_plans(&plans, &inserts);
    let mut serial_server = partitioned(grid, &recs);
    let s = serial_server.serve_serial_plans_with_recuts(&plans, &inserts, &recuts, |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    });
    for i in 0..plans.len() {
        assert_eq!(p.sessions[i].results, flat.sessions[i].results, "vs no-recut {i}");
        assert_eq!(p.sessions[i].results, s.sessions[i].results, "vs serial {i}");
        assert_eq!(p.sessions[i].stats, s.sessions[i].stats, "vs serial {i}");
        assert_each_object_once(&p.sessions[i].results);
        assert_eq!(p.sessions[i].outcome, SessionOutcome::Ok);
    }
    assert_eq!(server.grid().len(), 3, "server adopted the recut grid");
    assert_eq!(serial_server.grid().len(), 3);
}

/// The leaf page holding `oid` — found by a plain DFS over clean pages,
/// so call this *before* corrupting anything.
fn leaf_page_of<S: PageStore>(tree: &RTree<R, S>, oid: u32) -> PageId {
    let mut stack = vec![tree.root_page()];
    while let Some(page) = stack.pop() {
        let node = tree.read_node(page);
        if node.is_leaf() {
            if node.leaf_records().any(|r| r.oid == oid) {
                return page;
            }
        } else {
            for (_, child) in node.internal_entries() {
                stack.push(child);
            }
        }
    }
    panic!("oid {oid} not found in any leaf");
}

/// The retired-zombie regression: a session that panics mid-run (broken
/// node header on its sweep path) detaches from its clocks instead of
/// parking on a barrier. The writer keeps applying every batch, the
/// healthy session's results are bit-identical to a run without the
/// doomed session, and the serve terminates (this test completing *is*
/// the no-deadlock assertion).
#[test]
fn mid_run_panic_neither_deadlocks_nor_perturbs_others() {
    let recs = line_records(40);
    // Inserts land in the healthy session's lane only, far from the
    // corrupt leaf, so the writer's descent never touches it.
    let inserts: Vec<Vec<(R, f64)>> = (0..8)
        .map(|k| {
            let t = k as f64;
            vec![(
                R::new(500 + k as u32, 0, Interval::new(t, 100.0), [2.25, 0.5], [2.25, 0.5]),
                t,
            )]
        })
        .collect();
    let healthy = slide_spec(SessionKind::Pdq, 0.0, 8, 8.0);
    let doomed = slide_spec(SessionKind::Pdq, 24.0, 8, 8.0);

    // No checksum layer, flip byte 0: the node header itself breaks, so
    // the doomed session's descent panics (contained fail-stop).
    let store = FaultyStore::with_flipped_bytes(
        Pager::with_page_size(256),
        FaultPlan::quiet(7),
        vec![0],
    );
    let tree = build_tree(store, &recs);
    let victim = leaf_page_of(&tree, 28);
    tree.store().corrupt_page(victim);

    let server = DqServer::new(tree);
    let report = server.serve(&[healthy.clone(), doomed], &inserts);
    assert!(
        matches!(report.sessions[1].outcome, SessionOutcome::Failed(_)),
        "doomed session should have died, got {:?}",
        report.sessions[1].outcome
    );
    // Every frame's batch still applied after the detach.
    assert_eq!(report.frames, 8);
    assert_eq!(report.inserts_applied, 8);
    assert!(report.writer_outcome.is_ok());

    // The healthy session is oblivious: same results as a run that
    // never had the doomed session at all, on a clean store.
    let oracle = DqServer::new(build_tree(Pager::with_page_size(256), &recs))
        .serve_serial(std::slice::from_ref(&healthy), &inserts);
    assert!(report.sessions[0].outcome.is_ok());
    assert_eq!(report.sessions[0].results, oracle.sessions[0].results);
    assert_eq!(report.sessions[0].frames.len(), 8);
}

/// Out-of-lockstep execution (one deliberately slow session): results
/// stay bit-identical to the undelayed serial reference and the
/// per-frame flight recorder still reconciles exactly with the
/// session-level stats — on both servers.
#[test]
fn frame_reports_reconcile_out_of_lockstep() {
    let recs = line_records(40);
    let inserts = line_inserts(10, 3);
    let specs = [
        slide_spec(SessionKind::Pdq, 0.0, 10, 10.0),
        slide_spec(SessionKind::Npdq, 12.0, 10, 10.0),
        slide_spec(SessionKind::Pdq, 24.0, 10, 10.0),
    ];
    let plans: Vec<SessionPlan<2>> = specs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, spec)| {
            let p = SessionPlan::new(spec);
            if i == 1 {
                p.with_frame_delay(Duration::from_millis(2))
            } else {
                p
            }
        })
        .collect();
    let undelayed: Vec<SessionPlan<2>> = specs.iter().cloned().map(SessionPlan::new).collect();

    let p = DqServer::new(build_tree(Pager::new(), &recs)).serve_plans(&plans, &inserts);
    let s = DqServer::new(build_tree(Pager::new(), &recs)).serve_serial_plans(&undelayed, &inserts);
    for i in 0..plans.len() {
        assert_eq!(p.sessions[i].results, s.sessions[i].results, "session {i}");
    }
    assert_frames_reconcile(&p.sessions);

    let grid = RegionGrid::from_cuts(0, vec![15.0, 30.0]);
    let pp = partitioned(grid.clone(), &recs).serve_plans(&plans, &inserts);
    let ps = partitioned(grid, &recs).serve_serial_plans(&undelayed, &inserts);
    for i in 0..plans.len() {
        assert_eq!(pp.sessions[i].results, ps.sessions[i].results, "session {i}");
    }
    assert_frames_reconcile(&pp.sessions);
}
