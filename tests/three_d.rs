//! Three-dimensional motion, end to end — the paper's other case ("in
//! most spatial applications, d is 2 or 3"). Every layer is
//! const-generic over the spatial dimension; this exercises D = 3 from
//! simulation through indexing to PDQ and NPDQ.

use dq_repro::mobiquery::{NaiveEngine, NpdqEngine, PdqEngine, SnapshotQuery, Trajectory};
use dq_repro::motion::{RandomWalk, RandomWalkConfig};
use dq_repro::rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::storage::Pager;
use dq_repro::stkit::{Interval, Rect};
use std::collections::BTreeSet;

fn walk3() -> Vec<dq_repro::motion::ObjectTrace<3>> {
    RandomWalk::new(RandomWalkConfig::<3> {
        objects: 200,
        space: Rect::from_corners([0.0; 3], [50.0; 3]),
        duration: 10.0,
        mean_update_interval: 1.0,
        sd_update_interval: 0.2,
        speed_mean: 1.0,
        speed_sd: 0.2,
        seed: 0x3D,
    })
    .generate()
}

#[test]
fn three_d_traces_are_valid() {
    for tr in walk3() {
        tr.validate(1e-9).unwrap();
        assert!(tr.stays_inside(&Rect::from_corners([0.0; 3], [50.0; 3])));
    }
}

#[test]
fn three_d_pdq_matches_naive_union() {
    let traces = walk3();
    let mut tree: RTree<NsiSegmentRecord<3>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    for tr in &traces {
        for u in &tr.updates {
            tree.insert(
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
        }
    }
    tree.validate().unwrap();

    // A 10×10×10 view frustum flying diagonally through the volume.
    let traj = Trajectory::<3>::linear(
        Rect::from_corners([0.0; 3], [10.0; 3]),
        [4.0, 4.0, 4.0],
        Interval::new(1.0, 9.0),
        4,
    );

    let mut pdq = PdqEngine::start(&tree, traj.clone());
    let pdq_set: BTreeSet<(u32, u32)> = pdq
        .drain_window(&tree, 1.0, 9.0)
        .iter()
        .map(|r| (r.record.oid, r.record.seq))
        .collect();

    // Dense naive sampling is a subset (PDQ sees continuous time).
    let naive = NaiveEngine::new();
    let mut union = BTreeSet::new();
    for k in 0..=160 {
        let t = 1.0 + 8.0 * k as f64 / 160.0;
        naive.query_nsi(&tree, &traj.snapshot_at(t), |r| {
            union.insert((r.oid, r.seq));
        });
    }
    for e in &union {
        assert!(pdq_set.contains(e), "PDQ missed {e:?}");
    }
    // Everything PDQ returned genuinely intersects the moving frustum.
    for (oid, seq) in &pdq_set {
        let u = traces
            .iter()
            .flat_map(|t| &t.updates)
            .find(|u| u.oid == *oid && u.seq == *seq)
            .unwrap();
        assert!(!traj.overlap_segment(&u.seg).is_empty());
    }
    assert!(!pdq_set.is_empty());
}

#[test]
fn three_d_npdq_session() {
    let traces = walk3();
    let mut tree: RTree<DtaSegmentRecord<3>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    for tr in &traces {
        for u in &tr.updates {
            tree.insert(
                DtaSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
        }
    }
    let naive = NaiveEngine::new();
    let mut eng = NpdqEngine::new();
    let (mut npdq_union, mut naive_union) = (BTreeSet::new(), BTreeSet::new());
    for k in 0..20 {
        let t = 1.0 + k as f64 * 0.2;
        let w = Rect::from_corners(
            [10.0 + k as f64 * 0.5, 10.0, 10.0],
            [25.0 + k as f64 * 0.5, 25.0, 25.0],
        );
        let q = SnapshotQuery::<3>::open_from(w, t);
        eng.execute(&tree, &q, f64::INFINITY, |r| {
            npdq_union.insert((r.oid, r.seq));
        });
        naive.query_dta(&tree, &q, |r| {
            naive_union.insert((r.oid, r.seq));
        });
    }
    assert_eq!(npdq_union, naive_union);
    assert!(!npdq_union.is_empty());
}

#[test]
fn three_d_page_capacities() {
    // D = 3: 40-byte leaf records, 32-byte NSI keys.
    let tree: RTree<NsiSegmentRecord<3>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    assert_eq!(tree.leaf_capacity(), (4096 - 32) / 40);
    assert_eq!(tree.internal_capacity(), (4096 - 32) / 36);
}
