//! Serving over TCP — the network front door, end to end.
//!
//! Stands a `NetServer` up on a loopback socket, then connects three
//! protocol clients: two well-behaved sessions that stream their
//! per-frame deltas, and one deliberately slow reader that stops
//! granting credit after the first frame and gets evicted without
//! slowing anyone else down. Finally the handle is shut down
//! gracefully and the server's summary is printed.
//!
//! The wire results are checked against an in-process
//! `serve_serial_plans` run of the same plans — the socket boundary
//! must not change a single (oid, frame) pair.
//!
//! ```bash
//! cargo run --release --example net_client
//! ```

use std::thread;

use dq_repro::mobiquery::{
    PartitionedDqServer, RegionGrid, SessionKind, SessionPlan, SessionSpec, Trajectory,
};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::server::{ClientBehavior, ClientOutcome, Msg, NetClient, NetServer, ServerConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::Pager;

type R = NsiSegmentRecord<2>;

const FRAMES: usize = 12;
const SPACE: f64 = 50.0;

/// A line of stationary objects across the whole space.
fn records() -> Vec<R> {
    (0..100)
        .map(|i| {
            let x = f64::from(i) * SPACE / 100.0 + 0.25;
            R::new(i, 0, Interval::new(0.0, 1_000.0), [x, 0.5], [x, 0.5])
        })
        .collect()
}

/// A PDQ window sliding rightward from x = `x0`.
fn plan(x0: f64) -> SessionPlan<2> {
    SessionPlan::new(SessionSpec {
        kind: SessionKind::Pdq,
        trajectory: Trajectory::linear(
            Rect::from_corners([x0, 0.0], [x0 + 5.0, 1.0]),
            [1.0, 0.0],
            Interval::new(0.0, FRAMES as f64),
            2,
        ),
        frame_times: (0..=FRAMES).map(|k| k as f64).collect(),
    })
}

/// One fresh object lands per frame, so every frame has a live insert.
fn inserts() -> Vec<Vec<(R, f64)>> {
    (0..FRAMES)
        .map(|k| {
            let t = k as f64;
            let x = (t * 7.0 + 3.0) % SPACE;
            vec![(
                R::new(1_000 + k as u32, 0, Interval::new(t, 1_000.0), [x, 0.5], [x, 0.5]),
                t,
            )]
        })
        .collect()
}

fn core() -> PartitionedDqServer<2, Pager> {
    let grid = RegionGrid::uniform(0, Interval::new(0.0, SPACE), 2);
    PartitionedDqServer::build(grid, &records(), |_| {
        RTree::new(Pager::new(), RTreeConfig::default())
    })
}

fn main() {
    let plans = vec![plan(2.0), plan(30.0), plan(10.0)];

    // The in-process answer the wire stream must reproduce.
    let oracle = core().serve_serial_plans(&plans, &inserts());

    let config = ServerConfig {
        min_gather: 3, // serve all three sessions as one batch
        ..ServerConfig::default()
    };
    let handle =
        NetServer::start(core(), vec![inserts()], "127.0.0.1:0", config).expect("bind loopback");
    let addr = handle.addr();
    println!("serving on {addr}");

    // Two well-behaved clients stream their deltas; the third stalls.
    type Finished = (usize, ClientOutcome, Vec<(u32, u32)>);
    let mut clients: Vec<thread::JoinHandle<Finished>> = Vec::new();
    for (i, p) in plans.iter().enumerate() {
        let p = p.clone();
        clients.push(thread::spawn(move || {
            let mut c = NetClient::connect(addr).expect("connect");
            let session = c.hello(&p, 4).expect("hello io").expect("admitted");
            if i == 2 {
                // The slow reader: take one delta, then never grant
                // credit again. The server's outbox fills, the write
                // deadline passes, and the session is evicted.
                let run = c.run(ClientBehavior::StallAfter(1));
                let results = run.results();
                return (i, run.outcome, results);
            }
            let mut results = Vec::new();
            loop {
                match c.next_msg().expect("read frame") {
                    Msg::Delta { frame, results: r, .. } => {
                        println!("session {session} frame {frame}: {} hits", r.len());
                        results.extend(r);
                        c.grant(1).ok();
                    }
                    Msg::Done { outcome, frames, .. } => {
                        return (i, ClientOutcome::Done { outcome, frames, results: 0 }, results)
                    }
                    other => panic!("unexpected frame: {other:?}"),
                }
            }
        }));
    }

    for handle_ in clients {
        let (i, outcome, results) = handle_.join().expect("client thread");
        match outcome {
            ClientOutcome::Done { .. } => {
                assert_eq!(
                    results, oracle.base.sessions[i].results,
                    "session {i}: wire results must match the serial oracle"
                );
                println!("session {i}: done, {} results, bit-identical to oracle", results.len());
            }
            ClientOutcome::Evicted(reason) => {
                println!("session {i}: evicted ({reason:?}) — the slow reader, as planned");
            }
            ClientOutcome::ConnectionLost => {
                println!("session {i}: connection lost after eviction");
            }
        }
    }

    let summary = handle.shutdown();
    println!(
        "shutdown: {} session(s) served, {} evicted, checkpointed: {}",
        summary.sessions, summary.evicted, summary.checkpointed
    );
    assert_eq!(summary.evicted, 1, "exactly the slow reader is evicted");
}
