//! Fly-through visualization session — the paper's motivating scenario.
//!
//! A user navigates a virtual world at 20 frames/second. Every frame the
//! renderer needs all objects in the view frustum (modelled as a moving
//! 2-d window). The example runs the same fly-through twice — naive
//! per-frame snapshot queries vs one predictive dynamic query — and shows
//! the per-frame disk I/O and the client cache evolving (objects evicted
//! exactly at their disappearance time).
//!
//! ```bash
//! cargo run --release --example flythrough
//! ```

use dq_repro::mobiquery::{ClientCache, NaiveEngine, PdqEngine, Trajectory};
use dq_repro::motion::{RandomWalk, RandomWalkConfig};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::Rect;
use dq_repro::storage::{PageStore, Pager};

const FPS: f64 = 20.0;

fn build_world() -> RTree<NsiSegmentRecord<2>, Pager> {
    let walk = RandomWalk::new(RandomWalkConfig {
        objects: 2000,
        duration: 30.0,
        ..RandomWalkConfig::default()
    });
    let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
    for trace in walk.generate() {
        for u in &trace.updates {
            tree.insert(
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
        }
    }
    tree
}

/// The tour: an S-shaped path over the terrain, 12×12 view window.
fn tour() -> Trajectory<2> {
    use dq_repro::mobiquery::KeySnapshot;
    let win = |x: f64, y: f64| Rect::from_corners([x, y], [x + 12.0, y + 12.0]);
    Trajectory::new(vec![
        KeySnapshot { t: 5.0, window: win(5.0, 5.0) },
        KeySnapshot { t: 10.0, window: win(60.0, 10.0) },
        KeySnapshot { t: 15.0, window: win(70.0, 60.0) },
        KeySnapshot { t: 20.0, window: win(15.0, 70.0) },
    ])
}

fn main() {
    let tree = build_world();
    println!(
        "world: {} motion segments, R-tree height {}\n",
        tree.len(),
        tree.height()
    );
    let trajectory = tour();
    let span = trajectory.span();
    let frames: Vec<f64> = {
        let n = ((span.length()) * FPS) as usize;
        (0..=n).map(|i| span.lo + i as f64 / FPS).collect()
    };

    // --- Pass 1: naive — one snapshot query per frame. ---
    let naive = NaiveEngine::new();
    let before = tree.store().io();
    let mut naive_results = 0u64;
    for &t in &frames {
        let q = trajectory.snapshot_at(t);
        naive_results += naive.query_nsi(&tree, &q, |_| {}).results;
    }
    let naive_io = (tree.store().io() - before).reads;

    // --- Pass 2: one PDQ + a client cache keyed on disappearance. ---
    let before = tree.store().io();
    let mut pdq = PdqEngine::start(&tree, trajectory.clone());
    let mut cache: ClientCache<NsiSegmentRecord<2>> = ClientCache::new();
    let mut delivered = 0u64;
    let mut peak_cache = 0;
    let mut prev = frames[0];
    for (i, &t) in frames.iter().enumerate() {
        for r in pdq.drain_window(&tree, prev, t) {
            cache.insert(r.record.oid, r.record, r.visibility);
            delivered += 1;
        }
        cache.advance(t);
        peak_cache = peak_cache.max(cache.len());
        if i % (FPS as usize * 3) == 0 {
            println!(
                "t={t:>5.2}  visible objects: {:>3}  (cache resident {:>3}, evicted so far {:>4})",
                cache.visible_now().count(),
                cache.len(),
                cache.evicted_total()
            );
        }
        prev = t;
    }
    let pdq_io = (tree.store().io() - before).reads;

    println!("\n{} frames rendered at {} fps", frames.len(), FPS);
    println!(
        "naive : {naive_io:>6} disk accesses, {naive_results:>6} objects shipped (with re-delivery every frame)"
    );
    println!(
        "PDQ   : {pdq_io:>6} disk accesses, {delivered:>6} objects shipped (each exactly once), peak client cache {peak_cache}"
    );
    println!(
        "speedup: {:.1}× fewer disk accesses",
        naive_io as f64 / pdq_io.max(1) as f64
    );
}
