//! The §3.1 update-cost / precision trade-off, end to end.
//!
//! A vehicle drives a weaving path. Its tracker reports to the database
//! only when the true position deviates from the database's dead-reckoned
//! prediction by more than a threshold. The example sweeps the threshold
//! and shows the trade-off the paper describes: tighter thresholds mean
//! more updates (more segments indexed, more insert I/O) but a smaller
//! bound on the database's position error — and with imprecision the
//! index must inflate bounding boxes, admitting more false positives.
//!
//! ```bash
//! cargo run --release --example dead_reckoning
//! ```

use dq_repro::motion::DeadReckoner;
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{PageStore, Pager};

/// True position of the vehicle: eastbound with a sinusoidal weave.
fn true_pos(t: f64) -> [f64; 2] {
    [t, 50.0 + 3.0 * (t * 0.8).sin()]
}

fn main() {
    println!("threshold | updates | max DB error | index pages | query false-positives");
    println!("----------+---------+--------------+-------------+----------------------");
    for threshold in [0.25, 0.5, 1.0, 2.0, 4.0] {
        // Drive for 100 minutes, observing the truth every 0.05 min.
        let mut dr = DeadReckoner::new(1, threshold, 0.0, true_pos(0.0), [1.0, 2.4]);
        let mut updates = Vec::new();
        let mut max_err = 0.0f64;
        let mut t = 0.05;
        while t <= 100.0 {
            let p = true_pos(t);
            let pred = dr.predicted(t);
            let err = ((p[0] - pred[0]).powi(2) + (p[1] - pred[1]).powi(2)).sqrt();
            if let Some(u) = dr.observe(t, p) {
                updates.push(u);
            } else {
                max_err = max_err.max(err);
            }
            t += 0.05;
        }
        if let Some(u) = dr.finish() {
            updates.push(u);
        }

        // Index the reported motion, inflating each bounding box by the
        // threshold (the §3.1 "imprecise bounding box": no object missed).
        let mut tree: RTree<NsiSegmentRecord<2>, Pager> =
            RTree::new(Pager::new(), RTreeConfig::default());
        for u in &updates {
            let rec = NsiSegmentRecord::new(
                u.oid,
                u.seq,
                u.seg.t,
                u.seg.x0,
                u.seg.end_position(),
            );
            tree.insert(rec, u.seg.t.lo);
        }
        let pages = tree.store().io().allocs;

        // Query: was the vehicle in the box [40,60]×[45,55] during
        // t∈[40,60]? Count bounding-box admissions that the *inflated*
        // (imprecision-aware) test accepts but the true path never entered.
        let window = Rect::from_corners([40.0, 45.0], [60.0, 55.0]);
        let qtime = Interval::new(40.0, 60.0);
        let mut admissions = 0u64;
        let mut true_hits = 0u64;
        let key = dq_repro::stkit::StBox::new(window, Rect::new([qtime]));
        tree.range_search(
            &key,
            |r| {
                // Inflated exact test (uncertainty-aware).
                !r.seg
                    .intersect_query(&window.inflate(threshold), &qtime)
                    .is_empty()
            },
            |r| {
                admissions += 1;
                // Ground truth from the real path.
                let mut t = r.seg.t.lo.max(qtime.lo);
                let end = r.seg.t.hi.min(qtime.hi);
                let mut hit = false;
                while t <= end {
                    if window.contains_point(&true_pos(t)) {
                        hit = true;
                        break;
                    }
                    t += 0.01;
                }
                if hit {
                    true_hits += 1;
                }
            },
        );

        println!(
            "{threshold:>9.2} | {:>7} | {:>12.3} | {:>11} | {admissions:>3} admitted, {true_hits:>3} truly in window",
            updates.len(),
            max_err,
            pages,
        );
    }
    println!("\nTighter thresholds: more updates + pages, smaller error bound.");
    println!("Looser thresholds: fewer updates, but inflated boxes admit more candidates.");
}
