//! Situational awareness: a vehicle monitors its vicinity while other
//! vehicles stream position updates — the paper's military scenario.
//!
//! The observer's own course changes unpredictably, so the session uses
//! **NPDQ** (non-predictive dynamic queries) over the double-temporal-axes
//! index, with live insertions handled by the §4.2 timestamp mechanism.
//! On top of the range monitor, an incremental **kNN** tracks the three
//! nearest contacts (the paper's future-work extension).
//!
//! ```bash
//! cargo run --release --example vicinity_monitor
//! ```

use dq_repro::mobiquery::{knn_at, NpdqEngine, QueryStats, SnapshotQuery};
use dq_repro::motion::update::interleave_by_time;
use dq_repro::motion::{MotionUpdate, RandomWalk, RandomWalkConfig};
use dq_repro::rtree::{DtaSegmentRecord, NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::Rect;
use dq_repro::storage::Pager;

fn main() {
    // Traffic: 800 vehicles roaming a 100×100 km theatre for 20 minutes,
    // sending motion updates roughly once a minute.
    let walk = RandomWalk::new(RandomWalkConfig {
        objects: 800,
        duration: 20.0,
        ..RandomWalkConfig::default()
    });
    let updates: Vec<MotionUpdate<2>> =
        interleave_by_time(walk.generate().into_iter().map(|t| t.updates));
    println!("{} motion updates will stream in over 20 minutes", updates.len());

    // Two live indexes: NSI for kNN, double-temporal-axes for NPDQ.
    let mut dta: RTree<DtaSegmentRecord<2>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    let mut nsi: RTree<NsiSegmentRecord<2>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());

    // The observer: starts at the SW corner, changes heading every ~4
    // minutes (unpredictable — hence NPDQ, not PDQ).
    let legs: [(f64, [f64; 2]); 5] = [
        (0.0, [2.0, 1.0]),
        (4.0, [1.0, 3.0]),
        (8.0, [-1.5, 1.0]),
        (12.0, [0.5, -2.0]),
        (16.0, [2.0, 0.5]),
    ];
    let position = |t: f64| -> [f64; 2] {
        let mut p = [10.0, 10.0];
        for (i, &(t0, v)) in legs.iter().enumerate() {
            let t1 = legs.get(i + 1).map_or(20.0, |l| l.0);
            let dt = (t.min(t1) - t0).max(0.0);
            p[0] += v[0] * dt;
            p[1] += v[1] * dt;
        }
        [p[0].clamp(5.0, 95.0), p[1].clamp(5.0, 95.0)]
    };

    let mut monitor = NpdqEngine::new();
    let mut feed = updates.iter().peekable();
    let mut clock = 0.0f64;
    let mut total = QueryStats::default();
    let mut contacts = 0u64;

    // One radar sweep every 0.1 minute.
    let mut t = 0.5;
    while t < 20.0 {
        // Ingest every update that has arrived since the last sweep.
        while let Some(u) = feed.peek() {
            if u.seg.t.lo > t {
                break;
            }
            dta.insert(
                DtaSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
            nsi.insert(
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
            clock = clock.max(u.seg.t.lo);
            feed.next();
        }

        // Vicinity query: everything within ±8 km of the vehicle, now or
        // later (open-ended — the shape that lets NPDQ reuse the previous
        // sweep, §4.2).
        let p = position(t);
        let window = Rect::from_corners([p[0] - 8.0, p[1] - 8.0], [p[0] + 8.0, p[1] + 8.0]);
        let q = SnapshotQuery::open_from(window, t);
        let stats = monitor.execute(&dta, &q, clock, |_| {});
        contacts += stats.results;
        total += stats;

        // Every 2 minutes: report + 3 nearest contacts via kNN.
        if (t * 10.0).round() as i64 % 20 == 5 {
            let mut ks = QueryStats::default();
            let near = knn_at(&nsi, p, t, 3, f64::INFINITY, &mut ks);
            let ids: Vec<String> = near
                .iter()
                .map(|r| format!("#{} ({:.1} km)", r.record.oid, r.dist_sq.sqrt()))
                .collect();
            println!(
                "t={t:>4.1}min  pos ({:>4.1},{:>4.1})  new contacts this sweep: {:>2}  nearest: {}",
                p[0],
                p[1],
                stats.results,
                ids.join(", ")
            );
        }
        t += 0.1;
    }

    println!("\nsession totals:");
    println!("  {} sweeps, {} new-contact deliveries", (19.5 / 0.1) as u64, contacts);
    println!(
        "  {} disk accesses ({} at leaves), {} distance computations",
        total.disk_accesses, total.leaf_accesses, total.distance_computations
    );
    println!(
        "  indexes: NSI height {}, DTA height {}, {} segments each",
        nsi.height(),
        dta.height(),
        nsi.len()
    );
}
