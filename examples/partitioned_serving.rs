//! Region-partitioned serving — scaling the writer, keeping the answer.
//!
//! A fleet of random-walk objects is split 80/20 into a pre-loaded
//! history and a live update stream, then served twice:
//!  1. by the single-tree `DqServer` (one writer, one tree), and
//!  2. by the `PartitionedDqServer` over a 4-region grid — one tree,
//!     one writer thread, and one buffer pool per region, with each
//!     session's moving window split across the regions it sweeps and
//!     the per-region result streams merged back exactly-once.
//!
//! The PDQ sessions' per-frame answers must agree, and the partitioned
//! report breaks the work down per region. A final skewed run shows the
//! hotspot detector firing and the Kiwano-style recut moving the seams
//! toward the load.
//!
//! ```bash
//! cargo run --release --example partitioned_serving
//! ```

use dq_repro::mobiquery::{
    DqServer, PartitionedDqServer, RegionGrid, SessionKind, SessionSpec, Trajectory,
};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{Pager, ShardedBufferPool};
use dq_repro::workload::{Dataset, DatasetConfig};

const FRAMES: usize = 20;
const SPACE: f64 = 100.0;

fn main() {
    let ds = Dataset::generate(DatasetConfig {
        objects: 500,
        duration: 15.0,
        space_side: SPACE,
        seed: 0xBEEF,
    });
    let records = ds.nsi_records();
    let split = records.len() * 8 / 10;
    let (preload, live) = records.split_at(split);
    let inserts: Vec<Vec<(NsiSegmentRecord<2>, f64)>> = live
        .chunks(live.len().div_ceil(FRAMES).max(1))
        .map(|c| c.iter().map(|r| (*r, r.seg.t.lo)).collect())
        .collect();

    // Four sessions sweeping different strips of the space.
    let specs: Vec<SessionSpec<2>> = (0..4)
        .map(|i| {
            let y = 10.0 + 20.0 * i as f64;
            SessionSpec {
                kind: if i % 2 == 0 {
                    SessionKind::Pdq
                } else {
                    SessionKind::Npdq
                },
                trajectory: Trajectory::linear(
                    Rect::from_corners([0.0, y], [8.0, y + 8.0]),
                    [6.0, 0.0],
                    Interval::new(0.0, 15.0),
                    2,
                ),
                frame_times: (0..=FRAMES).map(|k| 15.0 * k as f64 / FRAMES as f64).collect(),
            }
        })
        .collect();

    // 1. Single tree, single writer.
    let mut mono_tree = RTree::new(
        ShardedBufferPool::new(Pager::new(), 256, 4),
        RTreeConfig::default(),
    );
    for r in preload {
        mono_tree.insert(*r, r.seg.t.lo);
    }
    let mono = DqServer::new(mono_tree).serve(&specs, &inserts);
    println!("single tree : {} physical inserts, {} results", mono.inserts_applied, mono.total_results());

    // 2. Four regions, four writers, one merged answer per session.
    let grid = RegionGrid::uniform(0, Interval::new(0.0, SPACE), 4);
    let server = PartitionedDqServer::build(grid, preload, |_| {
        RTree::new(
            ShardedBufferPool::new(Pager::new(), 64, 4),
            RTreeConfig::default(),
        )
    });
    let part = server.serve(&specs, &inserts);
    println!(
        "partitioned : {} physical inserts ({} seam replicas), {} results",
        part.base.inserts_applied,
        part.base.inserts_applied - mono.inserts_applied,
        part.total_results()
    );
    for (r, rr) in part.regions.iter().enumerate() {
        println!(
            "  region {r} x∈[{:>6.1}, {:>6.1}] : {:>4} inserts, writer {:>5} reads {:>5} writes, sessions {:>5} reads, load {:>6}",
            rr.span.lo, rr.span.hi, rr.inserts_applied, rr.writer_reads, rr.writer_writes, rr.session_reads, rr.load()
        );
    }

    // The PDQ sessions' delivered sets are identical frame by frame;
    // only in-frame tie order may differ between the two servers.
    for (i, (p, m)) in part.sessions.iter().zip(&mono.sessions).enumerate() {
        if specs[i].kind == SessionKind::Pdq {
            let (mut a, mut b) = (p.results.clone(), m.results.clone());
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "session {i} diverged");
        }
    }
    println!("PDQ sessions: partitioned answers match the single tree exactly");

    // 3. Skewed load on a fresh server (query-only, so reads dominate):
    // every session hammers the left edge; the hotspot detector flags
    // region 0 and the recut narrows its slab.
    let mut server = PartitionedDqServer::build(
        RegionGrid::uniform(0, Interval::new(0.0, SPACE), 4),
        &records,
        |_| {
            RTree::new(
                ShardedBufferPool::new(Pager::new(), 64, 4),
                RTreeConfig::default(),
            )
        },
    );
    let hot_specs: Vec<SessionSpec<2>> = (0..4)
        .map(|i| SessionSpec {
            kind: SessionKind::Pdq,
            trajectory: Trajectory::linear(
                Rect::from_corners([0.0, 20.0 * i as f64], [6.0, 20.0 * i as f64 + 6.0]),
                [0.5, 0.0],
                Interval::new(0.0, 15.0),
                2,
            ),
            frame_times: (0..=FRAMES).map(|k| 15.0 * k as f64 / FRAMES as f64).collect(),
        })
        .collect();
    server.serve(&hot_specs, &[]);
    let loads = server.region_loads();
    println!("skewed loads: {loads:?}");
    if let Some(hot) = server.hotspot(1.5) {
        let old_span = server.grid().span_of(hot);
        server.rebalance(4, |_| {
            RTree::new(
                ShardedBufferPool::new(Pager::new(), 64, 4),
                RTreeConfig::default(),
            )
        });
        let new_span = server.grid().span_of(hot);
        println!(
            "hotspot region {hot}: slab [{:.1}, {:.1}] recut to [{:.1}, {:.1}] (cuts now {:?})",
            old_span.lo, old_span.hi, new_span.lo, new_span.hi, server.grid().cuts()
        );
    }
}
