//! Quickstart: index some mobile objects and run a predictive dynamic
//! query over them.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dq_repro::mobiquery::{PdqEngine, Trajectory};
use dq_repro::motion::{RandomWalk, RandomWalkConfig};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::storage::{PageStore, Pager};

fn main() {
    // 1. Simulate 500 mobile objects wandering a 100×100 space for 20
    //    time units (≈1 motion update per object per time unit).
    let walk = RandomWalk::new(RandomWalkConfig {
        objects: 500,
        duration: 20.0,
        ..RandomWalkConfig::default()
    });

    // 2. Index every motion update in a paginated R-tree (one node = one
    //    4 KiB page; `insert` stamps nodes for NPDQ update management).
    let mut tree = RTree::new(Pager::new(), RTreeConfig::default());
    for trace in walk.generate() {
        for u in &trace.updates {
            let rec =
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position());
            tree.insert(rec, u.seg.t.lo);
        }
    }
    println!(
        "indexed {} motion segments in an R-tree of height {}",
        tree.len(),
        tree.height()
    );

    // 3. An observer flies a 10×10 window across the space from t=2 to
    //    t=12 — a predictive dynamic query.
    let trajectory = Trajectory::linear(
        Rect::from_corners([0.0, 45.0], [10.0, 55.0]),
        [8.0, 0.0], // 8 units per time unit, heading east
        Interval::new(2.0, 12.0),
        5,
    );

    // 4. Stream the answers: each object is returned exactly once, the
    //    moment it enters the view, with its full visibility time set.
    let before = tree.store().io();
    let mut pdq = PdqEngine::start(&tree, trajectory);
    let mut count = 0;
    let mut t = 2.0;
    while t < 12.0 {
        for r in pdq.drain_window(&tree, t, t + 0.5) {
            if count < 5 {
                println!(
                    "  t≈{t:>4.1}  object {:>3} enters view, visible {}",
                    r.record.oid, r.visibility
                );
            }
            count += 1;
        }
        t += 0.5;
    }
    let io = tree.store().io() - before;
    println!("…{count} objects delivered using {} disk accesses total", io.reads);
    println!(
        "(a naive per-frame approach at 20 fps would run {} snapshot queries)",
        (10.0_f64 / 0.05) as u64
    );
}
