//! Convoy analysis — the extension layers working together.
//!
//! A day of traffic is simulated; then we
//!  1. find *encounters* (pairs of vehicles within 1 km of each other)
//!     with the distance join and their exact meeting intervals,
//!  2. compute the continuous COUNT profile of a monitored zone from one
//!     PDQ run (no per-frame queries),
//!  3. track live traffic with the TPR-tree (current motions only) and
//!     compare its answer to the historical index,
//!  4. persist the historical index to a file and reload it.
//!
//! ```bash
//! cargo run --release --example convoy_analysis
//! ```

use dq_repro::mobiquery::{
    self_distance_join, CountProfile, PdqEngine, Trajectory,
};
use dq_repro::motion::{RandomWalk, RandomWalkConfig};
use dq_repro::rtree::{NsiSegmentRecord, RTree, RTreeConfig};
use dq_repro::storage::{load_pager, save_pager, Pager};
use dq_repro::stkit::{Interval, Rect};
use dq_repro::tprtree::{TprDynamicQuery, TprRecord};

fn main() {
    // 300 vehicles over 12 hours.
    let walk = RandomWalk::new(RandomWalkConfig {
        objects: 300,
        duration: 12.0,
        ..RandomWalkConfig::default()
    });
    let traces = walk.generate();

    // Historical index (NSI) and live index (TPR) from the same updates.
    let mut nsi: RTree<NsiSegmentRecord<2>, Pager> =
        RTree::new(Pager::new(), RTreeConfig::default());
    let mut tpr: RTree<TprRecord, Pager> = RTree::new(Pager::new(), RTreeConfig::default());
    for tr in &traces {
        for u in &tr.updates {
            nsi.insert(
                NsiSegmentRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.end_position()),
                u.seg.t.lo,
            );
            tpr.insert(
                TprRecord::new(u.oid, u.seq, u.seg.t, u.seg.x0, u.seg.v),
                u.seg.t.lo,
            );
        }
    }
    println!("indexed {} motion segments (NSI and TPR)\n", nsi.len());

    // --- 1. Encounters: pairs within 1 km, with meeting intervals. ---
    let mut encounters = 0u64;
    let mut longest: Option<(u32, u32, f64)> = None;
    let stats = self_distance_join(&nsi, 1.0, Interval::new(0.0, 12.0), |p| {
        encounters += 1;
        let d = p.meeting.measure();
        if longest.is_none_or(|(_, _, best)| d > best) {
            longest = Some((p.a.oid, p.b.oid, d));
        }
    });
    println!(
        "encounters within 1 km: {encounters} pairs ({} comparisons, {} node loads)",
        stats.distance_computations, stats.disk_accesses
    );
    if let Some((a, b, d)) = longest {
        println!("longest contact: vehicles {a} and {b}, together {d:.2} h\n");
    }

    // --- 2. Zone occupancy profile from one PDQ run. ---
    let zone = Trajectory::linear(
        Rect::from_corners([40.0, 40.0], [60.0, 60.0]),
        [0.0, 0.0],
        Interval::new(0.0, 12.0),
        2,
    );
    let mut pdq = PdqEngine::start(&nsi, zone);
    let results = pdq.drain_window(&nsi, 0.0, 12.0);
    let profile = CountProfile::from_results(&results);
    println!("zone [40,60]² occupancy (from one PDQ pass, no per-frame queries):");
    for h in [1.0, 4.0, 8.0, 11.0] {
        println!("  t={h:>4.1}h: {:>2} vehicles in zone", profile.count_at(h));
    }
    println!(
        "  peak {} · mean {:.1} over the day\n",
        profile.max_count(),
        profile.mean_over(Interval::new(0.0, 12.0))
    );

    // --- 3. Live tracking via TPR: same trajectory, same answers. ---
    let chase = Trajectory::linear(
        Rect::from_corners([20.0, 20.0], [30.0, 30.0]),
        [3.0, 1.0],
        Interval::new(2.0, 10.0),
        4,
    );
    let mut a = PdqEngine::start(&nsi, chase.clone());
    let mut b = TprDynamicQuery::start(&tpr, chase);
    let sa: std::collections::BTreeSet<u32> = a
        .drain_window(&nsi, 2.0, 10.0)
        .iter()
        .map(|r| r.record.oid)
        .collect();
    let sb: std::collections::BTreeSet<u32> = b
        .drain_window(&tpr, 2.0, 10.0)
        .iter()
        .map(|r| r.record.oid)
        .collect();
    println!(
        "pursuit query: NSI+PDQ and TPR agree on {} vehicles (sets {}),",
        sa.len(),
        if sa == sb { "identical" } else { "DIFFER!" }
    );
    println!(
        "  NSI cost {} node loads, TPR cost {} node loads\n",
        a.stats().disk_accesses,
        b.stats().disk_accesses
    );

    // --- 4. Persist and reload the historical index. ---
    let path = std::env::temp_dir().join("convoy_index.dqpg");
    let meta = nsi.metadata();
    save_pager(
        nsi.store(),
        std::io::BufWriter::new(std::fs::File::create(&path).unwrap()),
    )
    .unwrap();
    let size = std::fs::metadata(&path).unwrap().len();
    let reopened: RTree<NsiSegmentRecord<2>, _> = RTree::reopen(
        load_pager(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap(),
        RTreeConfig::default(),
        meta.0,
        meta.1,
        meta.2,
    );
    println!(
        "persisted index: {} KiB on disk, reloaded with {} records (height {})",
        size / 1024,
        reopened.len(),
        reopened.height()
    );
    let _ = std::fs::remove_file(&path);
}
