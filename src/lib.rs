//! Umbrella crate: re-exports the workspace libraries so examples and
//! integration tests can use a single dependency.
pub use mobiquery;
pub use motion;
pub use obs;
pub use rtree;
pub use server;
pub use stkit;
pub use storage;
pub use tprtree;
pub use workload;
